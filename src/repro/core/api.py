"""Host-side 2B-SSD API (§III-C).

``BA_PIN``, ``BA_FLUSH`` and ``BA_READ_DMA`` pass through ioctl + NVMe
vendor-unique commands (the left path of Fig. 4) and carry that fixed
cost.  ``BA_SYNC`` is pure CPU work — clflush + mfence over the entry's
written lines followed by the write-verify read (Fig. 3) — and
``BA_GET_ENTRY_INFO`` is served from the driver's cached table copy.

MMIO access to the BA-buffer goes through :class:`~repro.host.cpu.HostCPU`
exactly as an mmap'ed BAR1 window would: stores stage in the CPU WC buffer
and are *not durable* until ``BA_SYNC`` returns.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis import sanitizer as simsan
from repro.core.device import TwoBSSD
from repro.core.mapping_table import BaMappingEntry
from repro.host.cpu import HostCPU
from repro.host.memory import ByteRegion
from repro.obs import tracing
from repro.sim import Engine
from repro.sim.engine import Event


class TwoBApiClient:
    """One application's handle on the 2B-SSD byte path."""

    def __init__(self, engine: Engine, cpu: HostCPU, device: TwoBSSD) -> None:
        self.engine = engine
        self.cpu = cpu
        self.device = device
        # The mmap'ed BAR1 view: CPU stores land (via ATU) in this region.
        self.region = device.ba_dram
        self._lines_since_sync: dict[int, int] = {}

    @property
    def params(self):
        return self.device.ba_params

    # -- control APIs (ioctl path) ---------------------------------------------

    def ba_pin(self, entry_id: int, offset: int, lba: int, length: int) -> Iterator[Event]:
        """Process: BA_PIN(EID, offset, LBA, length) — load + pin + map."""
        with tracing.span("core.api.ba_pin", self.engine):
            yield self.engine.timeout(self.params.ioctl_latency)
            entry = yield self.engine.process(
                self.device.ba_manager.pin(entry_id, offset, lba, length)
            )
        self._lines_since_sync.setdefault(entry_id, 0)
        return entry

    def ba_flush(self, entry_id: int) -> Iterator[Event]:
        """Process: BA_FLUSH(EID) — write buffer contents to NAND, unmap.

        Stores still staged in the CPU WC buffer are drained first
        (clflush + write-verify read, the BA_SYNC steps), so a flush
        without a preceding sync publishes what the application last
        stored instead of a torn page.  Callers that already synced have
        no staged lines in the entry's window and skip the drain — no
        extra simulated events on that path.
        """
        with tracing.span("core.api.ba_flush", self.engine):
            info = self.device.ba_manager.get_entry_info(entry_id)
            if self.cpu.wc.dirty_lines_in_range(self.region, info.offset, info.length):
                lines = yield self.engine.process(
                    self.cpu.wc_flush(self.region, info.offset, info.length)
                )
                yield self.engine.process(self.cpu.write_verify_read(lines))
            yield self.engine.timeout(self.params.ioctl_latency)
            entry = yield self.engine.process(self.device.ba_manager.flush(entry_id))
        self._lines_since_sync.pop(entry_id, None)
        return entry

    def ba_get_entry_info(self, entry_id: int) -> Iterator[Event]:
        """Process: BA_GET_ENTRY_INFO(EID) — mapping details for one entry."""
        if tracing.enabled:
            _t0 = self.engine.now
        yield self.engine.timeout(self.params.entry_info_latency)
        if tracing.enabled:
            tracing.observe("core.api.ba_get_entry_info", self.engine.now - _t0)
        return self.device.ba_manager.get_entry_info(entry_id)

    def ba_read_dma(self, entry_id: int, dst: ByteRegion, dst_offset: int,
                    length: int) -> Iterator[Event]:
        """Process: BA_READ_DMA(EID, dst, length) — engine-assisted bulk read,
        completed by a device interrupt."""
        with tracing.span("core.api.ba_read_dma", self.engine):
            yield self.engine.timeout(self.params.ioctl_latency)
            entry = self.device.ba_manager.get_entry_info(entry_id)
            copied = yield self.engine.process(
                self.device.read_dma.copy(entry, dst, dst_offset, length)
            )
            yield self.engine.timeout(self.params.interrupt_latency)
        return copied

    def trim(self, lpn: int, npages: int) -> Iterator[Event]:
        """Process: discard a logical page range (block-path TRIM/deallocate).

        Log management trims recycled segments before re-pinning them so
        the pin takes the no-data fast path.
        """
        yield self.engine.timeout(self.params.ioctl_latency)
        self.device.trim(lpn, npages)
        return None

    # -- durability (CPU instruction path) ----------------------------------------

    def ba_sync(self, entry_id: int) -> Iterator[Event]:
        """Process: BA_SYNC(EID) — make the entry's buffer contents durable.

        Three sub-steps per §III-C: look up the entry (driver-cached),
        clflush+mfence its written lines, then the write-verify read.
        """
        if tracing.enabled:
            _t0 = self.engine.now
        entry = yield self.engine.process(self.ba_get_entry_info(entry_id))
        if simsan.enabled:
            simsan.sync_begin(entry_id, self.region, entry.offset, entry.length)
        try:
            yield self.engine.process(
                self.cpu.wc_flush(self.region, entry.offset, entry.length)
            )
            lines = self._lines_since_sync.get(entry_id, 0)
            yield self.engine.process(self.cpu.write_verify_read(lines))
        finally:
            if simsan.enabled:
                simsan.sync_end(entry_id)
        if tracing.enabled:
            tracing.observe("core.api.ba_sync", self.engine.now - _t0)
        self._lines_since_sync[entry_id] = 0
        return entry

    # -- mmap'ed MMIO access --------------------------------------------------------

    def mmio_write(self, entry: BaMappingEntry, rel_offset: int,
                   data: bytes) -> Iterator[Event]:
        """Process: store ``data`` at ``rel_offset`` within the pinned entry.

        Staged in the CPU WC buffer; durable only after :meth:`ba_sync`.
        """
        if rel_offset < 0 or rel_offset + len(data) > entry.length:
            raise ValueError(
                f"write [{rel_offset}, +{len(data)}) outside entry "
                f"{entry.entry_id} of {entry.length} bytes"
            )
        lines = yield self.engine.process(
            self.cpu.wc_store(self.region, entry.offset + rel_offset, data)
        )
        self._lines_since_sync[entry.entry_id] = (
            self._lines_since_sync.get(entry.entry_id, 0) + lines
        )
        return lines

    def mmio_read(self, entry: BaMappingEntry, rel_offset: int,
                  nbytes: int) -> Iterator[Event]:
        """Process: uncacheable MMIO read from the pinned entry (slow for
        bulk data — prefer :meth:`ba_read_dma` beyond ~2 KiB, §III-A3)."""
        if rel_offset < 0 or rel_offset + nbytes > entry.length:
            raise ValueError(
                f"read [{rel_offset}, +{nbytes}) outside entry "
                f"{entry.entry_id} of {entry.length} bytes"
            )
        data = yield self.engine.process(
            self.cpu.mmio_read(self.region, entry.offset + rel_offset, nbytes)
        )
        return data
