"""The 2B-SSD device: an ULL-class block SSD plus the byte path.

Composes every §III component over the block device of
:mod:`repro.ssd.device`:

* BAR manager — a second BAR (BAR1) whose window the ATU redirects into
  the BA-buffer region of the internal DRAM;
* BA-buffer manager — mapping table + internal DRAM<->NAND datapath;
* LBA checker — installed as the block path's ``lba_gate``;
* read DMA engine;
* recovery manager — capacitor-backed persistence of the BA-buffer.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ba_buffer import BaBufferManager
from repro.core.lba_checker import LbaChecker
from repro.core.mapping_table import BaMappingTable
from repro.core.params import BaParams
from repro.core.read_dma import ReadDmaEngine
from repro.core.recovery import RecoveryManager
from repro.host.memory import ByteRegion
from repro.pcie.bar import BarWindow
from repro.sim import Engine, Resource, RngStreams
from repro.ssd.device import BlockSSD
from repro.ssd.profiles import DeviceProfile, TWOB_BASE

# Host physical address the BIOS assigns to BAR1 in our memory map.
BAR1_HOST_BASE = 0x9000_0000


class TwoBSSD(BlockSSD):
    """Dual byte- and block-addressable SSD (the paper's contribution)."""

    def __init__(
        self,
        engine: Engine,
        profile: DeviceProfile = TWOB_BASE,
        ba_params: Optional[BaParams] = None,
        rng: Optional[RngStreams] = None,
    ) -> None:
        super().__init__(engine, profile, rng)
        self.ba_params = ba_params or BaParams(page_size=profile.geometry.page_size)
        if self.ba_params.page_size != profile.geometry.page_size:
            raise ValueError(
                f"BA page size {self.ba_params.page_size} must match device "
                f"page size {profile.geometry.page_size}"
            )
        # BAR manager: BAR1 window, write-combining, ATU into the BA-buffer.
        self.bar1 = BarWindow(
            index=1,
            host_base=BAR1_HOST_BASE,
            size=self.ba_params.buffer_bytes,
            device_base=0,
            write_combining=True,
        )
        # The BA-buffer: the DRAM capacity reserved for the byte path.
        self.ba_dram = ByteRegion("ba-buffer", self.ba_params.buffer_bytes)
        self.mapping_table = BaMappingTable(
            self.ba_params.buffer_bytes, self.ba_params.max_entries,
            self.ba_params.page_size,
        )
        self.ba_manager = BaBufferManager(
            engine, self, self.ba_dram, self.ba_params, self.mapping_table
        )
        self.read_dma = ReadDmaEngine(engine, self.ba_dram, self.ba_params)
        self.recovery = RecoveryManager(self.ba_dram, self.mapping_table, self.ba_params)
        self.lba_gate = LbaChecker(self.mapping_table)

    # -- state capture ---------------------------------------------------------

    def capture_state(self) -> dict:
        """Snapshot the block half plus every byte-path component."""
        if self.recovery.has_saved_image:
            raise RuntimeError(
                "capture with a pending recovery image is unsupported")
        state = super().capture_state()
        state["ba_dram"] = self.ba_dram.snapshot()
        state["mapping_table"] = self.mapping_table.to_snapshot()
        state["ba_stats"] = {
            "pins": self.ba_manager.stats.pins,
            "flushes": self.ba_manager.stats.flushes,
            "pages_pinned": self.ba_manager.stats.pages_pinned,
            "pages_flushed": self.ba_manager.stats.pages_flushed,
        }
        state["lba_gate_stats"] = {
            "checks": self.lba_gate.stats.checks,
            "gated": self.lba_gate.stats.gated,
        }
        state["read_dma_stats"] = {
            "transfers": self.read_dma.stats.transfers,
            "bytes_copied": self.read_dma.stats.bytes_copied,
        }
        state["recovery_stats"] = {
            "emergency_dumps": self.recovery.stats.emergency_dumps,
            "restores": self.recovery.stats.restores,
            "dumps_failed": self.recovery.stats.dumps_failed,
        }
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.ba_dram.restore(state["ba_dram"])
        self.mapping_table.restore_snapshot(state["mapping_table"])
        for section, stats in (
            ("ba_stats", self.ba_manager.stats),
            ("lba_gate_stats", self.lba_gate.stats),
            ("read_dma_stats", self.read_dma.stats),
            ("recovery_stats", self.recovery.stats),
        ):
            for name, value in state[section].items():
                setattr(stats, name, value)

    # -- power behaviour -------------------------------------------------------

    def power_loss(self) -> bool:
        """Power failure: PLP destages the block cache (inherited) and the
        recovery manager dumps the BA-buffer.  Returns dump success."""
        super().power_loss()
        saved = self.recovery.emergency_save()
        # Whatever happens, DRAM itself is volatile: model the loss.
        self.ba_dram.clear()
        self.mapping_table.restore_snapshot([])
        return saved

    def power_on(self) -> bool:
        """Power-up: restore the BA-buffer and mapping table if an
        emergency image exists.  Returns True when an image was restored."""
        return self.recovery.restore()

    def halt(self) -> None:
        """Fence off the byte-path engines along with the block path."""
        super().halt()
        self.ba_manager._firmware_core.retire()
        self.read_dma._channel.retire()

    def reboot(self) -> None:
        """Restart firmware: block-path state plus the byte-path engines
        (firmware core / DMA channel whose holders died with the crash)."""
        super().reboot()
        self.ba_manager._firmware_core = Resource(self.engine)
        self.read_dma._channel = Resource(self.engine)
