"""The read DMA engine (§III-A3).

Plain MMIO reads of the BA-buffer are uncacheable 8-byte PCIe round trips
(~150 us for 4 KiB); the read DMA engine instead streams buffer contents to
a host-DRAM destination and raises a completion interrupt.  It is a shared
device facility, modeled as a capacity-1 resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.mapping_table import BaMappingEntry
from repro.core.params import BaParams
from repro.host.memory import ByteRegion
from repro.sim import Engine, Resource
from repro.sim.engine import Event


@dataclass
class ReadDmaStats:
    transfers: int = 0
    bytes_copied: int = 0


class ReadDmaEngine:
    """Copies BA-buffer contents to a host-designated destination."""

    def __init__(self, engine: Engine, dram: ByteRegion, params: BaParams) -> None:
        self.engine = engine
        self.dram = dram
        self.params = params
        self._channel = Resource(engine)
        self.stats = ReadDmaStats()

    def copy(self, entry: BaMappingEntry, dst: ByteRegion, dst_offset: int,
             length: int) -> Iterator[Event]:
        """Process: DMA up to ``length`` bytes of the entry's buffer contents
        into ``dst`` (completion interrupt is charged by the API layer)."""
        if length <= 0:
            raise ValueError(f"DMA length must be positive, got {length}")
        if length > entry.length:
            raise ValueError(
                f"DMA of {length} bytes exceeds entry {entry.entry_id} "
                f"of {entry.length} bytes"
            )
        channel_req = self._channel.request()
        yield channel_req
        try:
            yield self.engine.timeout(self.params.dma_latency(length))
        finally:
            self._channel.release(channel_req)
        dst.write(dst_offset, self.dram.read(entry.offset, length))
        self.stats.transfers += 1
        self.stats.bytes_copied += length
        return length
