"""mmap'ed views of the BA-buffer (§II-B's access mechanism).

Applications reach the BA-buffer by ``mmap()``-ing the BAR1 window into
their address space and issuing plain loads/stores (Fig. 4, right path).
:class:`MmapView` models that: a base *virtual address* chosen at map
time, translated virtual -> BAR1 -> (ATU) -> BA-buffer offset on every
access, with the same bounds enforcement the hardware window provides.

This is sugar over :class:`~repro.core.api.TwoBApiClient` — the WAL and
engines use entry-relative offsets directly — but it is the shape real
application code against 2B-SSD would take.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.api import TwoBApiClient
from repro.core.mapping_table import BaMappingEntry
from repro.pcie.bar import BarAccessError
from repro.sim.engine import Event

# Where mmap places BAR1 in the process's virtual address space.
DEFAULT_VIRTUAL_BASE = 0x7F00_0000_0000


class MmapView:
    """One process's mapped window onto a pinned BA-buffer entry."""

    def __init__(self, api: TwoBApiClient, entry: BaMappingEntry,
                 virtual_base: int = DEFAULT_VIRTUAL_BASE) -> None:
        self.api = api
        self.entry = entry
        self.virtual_base = virtual_base
        bar = api.device.bar1
        # The virtual mapping covers exactly this entry's window of BAR1.
        self._bar_base = bar.host_base + entry.offset

    @property
    def length(self) -> int:
        return self.entry.length

    def _translate(self, virtual_address: int, nbytes: int) -> int:
        """virtual address -> BAR1 host address -> entry-relative offset."""
        offset = virtual_address - self.virtual_base
        if offset < 0 or offset + nbytes > self.entry.length:
            raise BarAccessError(
                f"access [{virtual_address:#x}, +{nbytes}) outside mapping of "
                f"{self.entry.length} bytes at {self.virtual_base:#x}"
            )
        host_address = self._bar_base + offset
        # The ATU validates the BAR window and yields the device offset.
        device_offset = self.api.device.bar1.translate(host_address, nbytes)
        return device_offset - self.entry.offset

    def store(self, virtual_address: int, data: bytes) -> Iterator[Event]:
        """Process: memcpy into the mapping (WC-buffered, not yet durable)."""
        rel = self._translate(virtual_address, len(data))
        yield self.api.engine.process(self.api.mmio_write(self.entry, rel, data))
        return None

    def load(self, virtual_address: int, nbytes: int) -> Iterator[Event]:
        """Process: memcpy out of the mapping (uncacheable, split reads)."""
        rel = self._translate(virtual_address, nbytes)
        data = yield self.api.engine.process(
            self.api.mmio_read(self.entry, rel, nbytes))
        return data

    def msync(self) -> Iterator[Event]:
        """Process: make prior stores durable (BA_SYNC under the hood)."""
        yield self.api.engine.process(self.api.ba_sync(self.entry.entry_id))
        return None
