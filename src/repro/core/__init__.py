"""The paper's contribution: the 2B-SSD device and its host APIs.

This package implements §III of the paper end to end:

* :class:`TwoBSSD` — an ULL-class NVMe SSD extended with a BAR1 window,
  the BA-buffer (8 MiB of capacitor-backed internal DRAM), the mapping
  table between buffer offsets and NAND LBA ranges, the LBA checker that
  gates block I/O to pinned ranges, the read DMA engine, and the recovery
  manager;
* :class:`TwoBApiClient` — the host-side API (ioctl-passed vendor
  commands): ``BA_PIN``, ``BA_FLUSH``, ``BA_SYNC``, ``BA_GET_ENTRY_INFO``,
  ``BA_READ_DMA``, plus mmap-style MMIO access to the BA-buffer;
* :class:`PowerController` — fault injection: coordinated power loss and
  recovery across the host CPU, the PCIe link, and devices.
"""

from repro.core.allocator import AllocationError, BaBufferAllocator, BaSlice
from repro.core.api import TwoBApiClient
from repro.core.device import TwoBSSD
from repro.core.faults import CrashHarness, CrashOutcome
from repro.core.errors import (
    BaBufferError,
    EntryNotFoundError,
    GatedLbaError,
    MappingTableFullError,
    PinConflictError,
    RecoveryDataLossError,
)
from repro.core.mapping_table import BaMappingEntry, BaMappingTable
from repro.core.mmap_view import MmapView
from repro.core.params import BaParams
from repro.core.power import PowerController

__all__ = [
    "AllocationError",
    "BaBufferAllocator",
    "BaBufferError",
    "BaSlice",
    "CrashHarness",
    "CrashOutcome",
    "BaMappingEntry",
    "BaMappingTable",
    "BaParams",
    "EntryNotFoundError",
    "GatedLbaError",
    "MappingTableFullError",
    "MmapView",
    "PinConflictError",
    "PowerController",
    "RecoveryDataLossError",
    "TwoBApiClient",
    "TwoBSSD",
]
