"""The LBA checker (§III-A2).

A hardware snoop on the block-I/O path: every block write's LBA range is
checked against the BA-buffer mapping table, and writes that would touch
pinned NAND pages are gated.  This is what keeps the two independent
datapaths from silently corrupting each other.

Block *reads* of pinned ranges are permitted — they return the NAND state,
which is stale until ``BA_FLUSH`` by design (the paper only gates
"inadvertent data updates").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import GatedLbaError
from repro.core.mapping_table import BaMappingTable


@dataclass
class LbaCheckerStats:
    checks: int = 0
    gated: int = 0


class LbaChecker:
    """Gates block writes that overlap BA-pinned LBA ranges."""

    def __init__(self, table: BaMappingTable) -> None:
        self._table = table
        self.stats = LbaCheckerStats()

    @property
    def table(self) -> BaMappingTable:
        """The mapping table this checker snoops (sanitizer agreement check)."""
        return self._table

    def would_gate(self, lpn: int, npages: int) -> bool:
        """Stat-free probe: would a block write to this range be gated?"""
        return self._table.pinned_lba_overlap(lpn, npages) is not None

    def check_write(self, lpn: int, npages: int) -> None:
        """Raise :class:`GatedLbaError` if the write overlaps a pinned range."""
        self.stats.checks += 1
        entry = self._table.pinned_lba_overlap(lpn, npages)
        if entry is not None:
            self.stats.gated += 1
            raise GatedLbaError(
                f"block write to pages [{lpn}, +{npages}) gated: LBA range pinned "
                f"to BA-buffer by mapping entry {entry.entry_id}"
            )
