"""Error types of the 2B-SSD byte path."""


class BaBufferError(Exception):
    """Base class for BA-buffer management failures."""


class PinConflictError(BaBufferError):
    """BA_PIN rejected: overlap with an existing entry, table full, or
    the requested buffer range does not fit."""


class MappingTableFullError(PinConflictError):
    """BA_PIN rejected specifically because every mapping-table slot is
    taken (Table I caps the table at eight entries).

    A distinct subtype so capacity-aware callers — the cluster placement
    code routing WAL streams across a device pool — can catch *exactly*
    the out-of-slots condition and fall back to block-WAL, while genuine
    overlap/validation conflicts keep propagating."""


class EntryNotFoundError(BaBufferError):
    """An API referenced a mapping-table entry id that does not exist."""


class GatedLbaError(Exception):
    """Block I/O targeted NAND pages currently pinned to the BA-buffer.

    The LBA checker (§III-A2) snoops every block request and gates those
    that would race with the byte path.
    """


class RecoveryDataLossError(Exception):
    """Power-loss backup could not complete within the capacitor budget;
    BA-buffer contents were lost."""
