"""Spans and counters over simulated time, keyed by layer.

Usage at an instrumented call site (the pattern every hot path follows)::

    from repro.obs import tracing
    ...
    if tracing.enabled:                       # one flag check, zero cost off
        _t0 = self.engine.now
    ... do the timed work ...
    if tracing.enabled:
        tracing.observe("ssd.nvme.submit", self.engine.now - _t0)

``enabled`` is a plain module-level bool: when tracing is off the only
overhead per call is that check, which keeps benches and tier-1 tests at
their calibrated timing.  Span durations are *simulated* seconds
(``engine.now`` deltas), the same clock every figure in the paper is
plotted against.

Spans land in per-name :class:`~repro.obs.histogram.LatencyHistogram`
instances inside the active :class:`Tracer`; counters are plain named
integers.  ``activated(tracer)`` scopes enablement for tests and the
``repro trace`` CLI.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.histogram import HistogramSnapshot, LatencyHistogram

# The module-level enable flag every call site checks. Mutated only via
# enable()/disable()/activated(); call sites read `tracing.enabled`.
enabled: bool = False


class Tracer:
    """A named collection of latency histograms and counters."""

    def __init__(self) -> None:
        self.histograms: dict[str, LatencyHistogram] = {}
        self.counters: dict[str, int] = {}

    def observe(self, name: str, seconds: float) -> None:
        """Record one span duration under ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LatencyHistogram()
        histogram.record(seconds)

    def count(self, name: str, delta: int = 1) -> None:
        """Bump the named counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def reset(self) -> None:
        self.histograms.clear()
        self.counters.clear()

    def snapshot(self) -> dict:
        """JSON-serializable view: histogram summaries + buckets + counters."""
        return {
            "histograms": {
                name: histogram.snapshot().to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def absorb(self, payload: dict) -> None:
        """Fold a :meth:`snapshot` payload (possibly from another process)
        into this tracer.

        The run-matrix executor ships each leg's tracer across the
        process boundary as its snapshot dict and absorbs them in leg
        order; histogram merging is bucket-count addition, so absorbing
        partitions of a workload in a fixed order reproduces the
        serial-run tracer exactly.
        """
        for name, data in payload.get("histograms", {}).items():
            incoming = HistogramSnapshot.from_dict(data)
            histogram = self.histograms.get(name)
            if histogram is None:
                self.histograms[name] = LatencyHistogram.from_snapshot(incoming)
            else:
                merged = histogram.snapshot().merge(incoming)
                self.histograms[name] = LatencyHistogram.from_snapshot(merged)
        for name, delta in payload.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + delta

    def merged_snapshot(self, name_prefix: str = "") -> HistogramSnapshot:
        """One histogram folding every span whose name starts with the prefix
        (e.g. ``"wal."`` merges all WAL backends' commit distributions)."""
        merged: Optional[HistogramSnapshot] = None
        for name, histogram in self.histograms.items():
            if not name.startswith(name_prefix):
                continue
            snap = histogram.snapshot()
            merged = snap if merged is None else merged.merge(snap)
        if merged is None:
            raise KeyError(f"no histograms under prefix {name_prefix!r}")
        return merged


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The tracer instrumented call sites currently write to."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the active tracer; returns the previous one."""
    global _tracer
    previous, _tracer = _tracer, tracer
    return previous


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Turn instrumentation on (optionally onto a fresh tracer)."""
    global enabled
    if tracer is not None:
        set_tracer(tracer)
    enabled = True
    return _tracer


def disable() -> None:
    global enabled
    enabled = False


def observe(name: str, seconds: float) -> None:
    _tracer.observe(name, seconds)


def count(name: str, delta: int = 1) -> None:
    _tracer.count(name, delta)


@contextlib.contextmanager
def activated(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope: enable tracing (onto ``tracer`` or a fresh one), restore the
    previous flag and tracer on exit.  The way tests and the CLI opt in."""
    global enabled
    previous_flag = enabled
    previous_tracer = set_tracer(tracer if tracer is not None else Tracer())
    enabled = True
    try:
        yield _tracer
    finally:
        enabled = previous_flag
        set_tracer(previous_tracer)


class _Span:
    """Context manager measuring one engine-clock interval."""

    __slots__ = ("name", "engine", "_start")

    def __init__(self, name: str, engine) -> None:
        self.name = name
        self.engine = engine
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self.engine.now
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        # A killed process (kernel purge, or garbage collection of an
        # abandoned generator) unwinds through the span via GeneratorExit:
        # the interval never completed, and by GC time the recording
        # scope may be gone — observing then would write a garbage sample
        # into whoever owns the tracer *now*.  Record only completed
        # spans, and only while tracing is still on.
        if exc_type is not GeneratorExit and enabled:
            _tracer.observe(self.name, self.engine.now - self._start)


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def span(name: str, engine):
    """A span over simulated time: ``with tracing.span("core.api.ba_pin",
    engine): ...``.  Returns a shared no-op when tracing is disabled, so
    disabled-mode spans allocate nothing and record nothing."""
    if not enabled:
        return _NOOP_SPAN
    return _Span(name, engine)
