"""Layered tracing and latency-histogram observability.

The paper's whole argument is a set of *measured* latency and bandwidth
distributions (Figs. 7-10), so the reproduction carries its own
instrument: named spans and counters, keyed by layer
(``host.cpu.*``, ``pcie.link.*``, ``ssd.nvme.*``, ``core.api.*``,
``ftl.pagemap.*``, ``nand.array.*``, ``wal.*``), feeding monotonic-bucket
latency histograms with p50/p95/p99/p999 queries.

Instrumentation is **off by default** and zero-cost when disabled: every
call site checks the module-level :data:`repro.obs.tracing.enabled` flag
once before touching the clock, so benches and tier-1 tests keep their
timing behavior unless a run opts in via :func:`tracing.enable` or the
``repro trace`` CLI subcommand.

See ``docs/observability.md`` for span names and exporter formats.
"""

from repro.obs import events
from repro.obs.events import EventBus, SimEvent
from repro.obs.histogram import DEFAULT_BOUNDS, HistogramSnapshot, LatencyHistogram
from repro.obs.tracing import Tracer, activated, disable, enable, get_tracer, span
from repro.obs.export import (
    snapshot_from_csv,
    snapshot_from_json,
    snapshot_to_csv,
    snapshot_to_json,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "EventBus",
    "SimEvent",
    "events",
    "HistogramSnapshot",
    "LatencyHistogram",
    "Tracer",
    "activated",
    "disable",
    "enable",
    "get_tracer",
    "span",
    "snapshot_from_csv",
    "snapshot_from_json",
    "snapshot_to_csv",
    "snapshot_to_json",
]
