"""Exporters for tracer snapshots: JSON (lossless) and CSV (summary).

The JSON form round-trips exactly — bucket counts included — via
:func:`snapshot_from_json`.  The CSV form is the flat per-span table
spreadsheets want: one row per histogram with count/mean/percentiles,
one row per counter; :func:`snapshot_from_csv` reconstructs the
summary-level view (counter totals and histogram counts survive the
round trip, bucket detail does not).
"""

from __future__ import annotations

import csv
import io
import json

CSV_FIELDS = ("kind", "name", "count", "total", "min", "max",
              "mean", "p50", "p90", "p95", "p99", "p999")


def snapshot_to_json(snapshot: dict) -> str:
    """Serialize a ``Tracer.snapshot()`` dict (lossless)."""
    return json.dumps(snapshot, indent=2, sort_keys=True)


def snapshot_from_json(text: str) -> dict:
    payload = json.loads(text)
    if "histograms" not in payload or "counters" not in payload:
        raise ValueError("not a tracer snapshot: missing histograms/counters")
    return payload


def snapshot_to_csv(snapshot: dict) -> str:
    """Flatten a ``Tracer.snapshot()`` dict to one row per span/counter."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        row = {"kind": "histogram", "name": name,
               "count": hist["count"], "total": hist["total"]}
        for field in ("min", "max", "mean", "p50", "p90", "p95", "p99", "p999"):
            if field in hist:
                row[field] = repr(hist[field])
        writer.writerow(row)
    for name, value in sorted(snapshot.get("counters", {}).items()):
        writer.writerow({"kind": "counter", "name": name, "count": value})
    return buffer.getvalue()


def snapshot_from_csv(text: str) -> dict:
    """Parse the CSV form back into a summary-level snapshot dict."""
    histograms: dict[str, dict] = {}
    counters: dict[str, int] = {}
    for row in csv.DictReader(io.StringIO(text)):
        kind = row.get("kind")
        if kind == "counter":
            counters[row["name"]] = int(row["count"])
        elif kind == "histogram":
            hist: dict = {"count": int(row["count"]),
                          "total": float(row["total"])}
            for field in ("min", "max", "mean", "p50", "p90", "p95",
                          "p99", "p999"):
                if row.get(field):
                    hist[field] = float(row[field])
            histograms[row["name"]] = hist
        else:
            raise ValueError(f"unknown row kind {kind!r}")
    return {"histograms": histograms, "counters": counters}
