"""Typed simulation event bus: the nemesis analyzer's input stream.

Where :mod:`repro.obs.tracing` aggregates *durations* into histograms,
this module records *occurrences*: a fault was injected, a node crashed,
a failover staged or promoted, a quorum commit acked.  Each occurrence is
a frozen :class:`SimEvent` carrying the simulated time, a dotted ``kind``
(``"cluster.commit.acked"``), and a JSON-safe payload.  Subscribers run
synchronously at the emission site, which is what lets the streaming
analyzer in :mod:`repro.nemesis.analyzer` assert invariants *at the
simulated instant they must hold* instead of post-processing a log.

The enablement contract is identical to tracing — a module-level
``enabled`` flag every call site checks first::

    from repro.obs import events
    ...
    if events.enabled:
        events.emit("cluster.commit.acked", self.engine.now,
                    stream=self.name, lsn=lsn)

so benches and tier-1 tests that never opt in pay one boolean check per
site and allocate nothing.  ``activated(bus)`` scopes enablement the same
way ``tracing.activated(tracer)`` does.

Subscribers must be *observers*: they may record and flag, but they must
not touch the engine or raise — an exception thrown into an arbitrary
emission site would surface as an unrelated process failure.  The
analyzer therefore records violations and lets its driver fail the run
at a checkpoint (see ``docs/nemesis.md``).
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Iterator, Optional

# The module-level enable flag every emission site checks.  Mutated only
# via enable()/disable()/activated(); call sites read `events.enabled`.
enabled: bool = False


@dataclasses.dataclass(frozen=True)
class SimEvent:
    """One typed occurrence on the simulated clock.

    ``data`` is a tuple of sorted ``(key, value)`` pairs (not a dict) so
    events stay frozen/hashable; values must be JSON-safe because event
    logs ship inside replay bundles.
    """

    time: float
    kind: str
    data: tuple = ()

    def get(self, key: str, default=None):
        for item_key, value in self.data:
            if item_key == key:
                return value
        return default

    def to_dict(self) -> dict:
        payload = {"time": self.time, "kind": self.kind}
        payload.update(dict(self.data))
        return payload


class EventBus:
    """An append-only event log plus synchronous subscribers."""

    def __init__(self) -> None:
        self.log: list[SimEvent] = []
        self._subscribers: list[Callable[[SimEvent], None]] = []

    def subscribe(self, callback: Callable[[SimEvent], None]) -> None:
        """Register ``callback`` to run at every subsequent emission."""
        self._subscribers.append(callback)

    def emit(self, kind: str, now: float, **data) -> SimEvent:
        event = SimEvent(time=now, kind=kind,
                         data=tuple(sorted(data.items())))
        self.log.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    def counts(self) -> dict[str, int]:
        """Events per kind, sorted by kind (JSON-safe summary)."""
        tally: dict[str, int] = {}
        for event in self.log:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> list[dict]:
        """The full log as plain data (the replay-bundle payload)."""
        return [event.to_dict() for event in self.log]


_bus = EventBus()


def get_bus() -> EventBus:
    """The bus instrumented call sites currently emit onto."""
    return _bus


def set_bus(bus: EventBus) -> EventBus:
    """Swap the active bus; returns the previous one."""
    global _bus
    previous, _bus = _bus, bus
    return previous


def enable(bus: Optional[EventBus] = None) -> EventBus:
    """Turn event emission on (optionally onto a fresh bus)."""
    global enabled
    if bus is not None:
        set_bus(bus)
    enabled = True
    return _bus


def disable() -> None:
    global enabled
    enabled = False


def emit(kind: str, now: float, **data) -> SimEvent:
    return _bus.emit(kind, now, **data)


@contextlib.contextmanager
def activated(bus: Optional[EventBus] = None) -> Iterator[EventBus]:
    """Scope: enable emission (onto ``bus`` or a fresh one), restore the
    previous flag and bus on exit.  The way campaigns and tests opt in."""
    global enabled
    previous_flag = enabled
    previous_bus = set_bus(bus if bus is not None else EventBus())
    enabled = True
    try:
        yield _bus
    finally:
        enabled = previous_flag
        set_bus(previous_bus)
