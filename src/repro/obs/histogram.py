"""Monotonic-bucket latency histograms with percentile queries.

Buckets are geometric (HdrHistogram-style): 32 per decade from 1 ns to
1000 s, so every bucket spans a ~7.5% value range and an interpolated
percentile is never off by more than that.  Exact ``min``/``max``/``sum``
ride along, and percentiles clamp to ``[min, max]`` — a one-sample
histogram answers every percentile with that sample exactly.

Snapshots are immutable, mergeable (same bucket boundaries sum
bucket-wise) and JSON-serializable, which is what lets
``collect_stats`` fold per-layer histograms into one report and the
exporters round-trip them.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional, Sequence


def geometric_bounds(
    low: float = 1e-9, high: float = 1e3, per_decade: int = 32
) -> tuple[float, ...]:
    """Strictly increasing bucket boundaries, ``per_decade`` per decade."""
    if low <= 0 or high <= low or per_decade < 1:
        raise ValueError("need 0 < low < high and per_decade >= 1")
    import math

    decades = math.log10(high / low)
    steps = int(round(decades * per_decade))
    ratio = 10 ** (1.0 / per_decade)
    bounds = [low * ratio ** i for i in range(steps + 1)]
    return tuple(bounds)


DEFAULT_BOUNDS = geometric_bounds()

_PERCENTILE_KEYS = (("p50", 50.0), ("p90", 90.0), ("p95", 95.0),
                    ("p99", 99.0), ("p999", 99.9))


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable point-in-time view of a :class:`LatencyHistogram`.

    ``counts`` has ``len(bounds) + 1`` slots: an underflow bucket
    ``[0, bounds[0])``, interior buckets ``[bounds[i-1], bounds[i])``,
    and an overflow bucket ``[bounds[-1], inf)``.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    total: float
    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"{len(self.bounds)} bounds need {len(self.bounds) + 1} "
                f"buckets, got {len(self.counts)}"
            )
        if sum(self.counts) != self.count:
            raise ValueError("bucket counts do not sum to the sample count")

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples recorded")
        return self.total / self.count

    def bucket_range(self, index: int) -> tuple[float, float]:
        """The value range ``[lo, hi)`` bucket ``index`` covers."""
        lo = 0.0 if index == 0 else self.bounds[index - 1]
        hi = self.bounds[index] if index < len(self.bounds) else float("inf")
        return lo, hi

    def percentile(self, pct: float) -> float:
        """Interpolated percentile, clamped to the exact [min, max] seen."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self.count == 0:
            raise ValueError("no samples recorded")
        target = pct / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lo, hi = self.bucket_range(index)
                if hi == float("inf"):
                    hi = self.maximum
                fraction = 0.0 if bucket_count == 0 else (
                    max(target - previous, 0.0) / bucket_count
                )
                value = lo + fraction * (hi - lo)
                return min(max(value, self.minimum), self.maximum)
        return self.maximum

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two snapshots taken with identical bucket boundaries."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    def summary(self) -> dict[str, float]:
        """The standard latency summary: mean, p50/p90/p95/p99/p999, max."""
        result = {"mean": self.mean}
        for key, pct in _PERCENTILE_KEYS:
            result[key] = self.percentile(pct)
        result["max"] = self.maximum
        return result

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form; zero buckets are elided as ``{index: count}``."""
        payload: dict = {
            "count": self.count,
            "total": self.total,
            "buckets": {str(i): c for i, c in enumerate(self.counts) if c},
            "num_buckets": len(self.counts),
        }
        if self.count:
            payload["min"] = self.minimum
            payload["max"] = self.maximum
            payload.update(self.summary())
        return payload

    @classmethod
    def from_dict(cls, payload: dict,
                  bounds: Optional[tuple[float, ...]] = None) -> "HistogramSnapshot":
        bounds = bounds or DEFAULT_BOUNDS
        counts = [0] * (len(bounds) + 1)
        for index, value in payload.get("buckets", {}).items():
            counts[int(index)] = int(value)
        count = int(payload["count"])
        return cls(
            bounds=bounds,
            counts=tuple(counts),
            count=count,
            total=float(payload["total"]),
            minimum=float(payload.get("min", 0.0)),
            maximum=float(payload.get("max", 0.0)),
        )


class LatencyHistogram:
    """A mutable histogram of non-negative latencies (seconds)."""

    __slots__ = ("bounds", "_counts", "_count", "_total", "_min", "_max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("bucket boundaries must be strictly increasing")
        if self.bounds and self.bounds[0] <= 0:
            raise ValueError("bucket boundaries must be positive")
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = 0.0

    def __len__(self) -> int:
        return self._count

    @classmethod
    def from_snapshot(cls, snapshot: HistogramSnapshot) -> "LatencyHistogram":
        """A live histogram seeded with a snapshot's contents (for merging)."""
        histogram = cls(snapshot.bounds)
        histogram._counts = list(snapshot.counts)
        histogram._count = snapshot.count
        histogram._total = snapshot.total
        histogram._min = snapshot.minimum if snapshot.count else float("inf")
        histogram._max = snapshot.maximum
        return histogram

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value}")
        self._counts[bisect_right(self.bounds, value)] += 1
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def bucket_index(self, value: float) -> int:
        """Which bucket ``record(value)`` lands in."""
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value}")
        return bisect_right(self.bounds, value)

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(self._counts),
            count=self._count,
            total=self._total,
            minimum=self._min if self._count else 0.0,
            maximum=self._max,
        )

    # Convenience passthroughs so a live histogram answers queries directly.

    def percentile(self, pct: float) -> float:
        return self.snapshot().percentile(pct)

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._total / self._count

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._max

    def summary(self) -> dict[str, float]:
        return self.snapshot().summary()
