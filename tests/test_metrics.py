"""Tests for the latency recorder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.metrics import LatencyRecorder


class TestLatencyRecorder:
    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(5.0)
        assert recorder.percentile(0) == 5.0
        assert recorder.percentile(100) == 5.0
        assert recorder.mean == 5.0

    def test_percentiles_of_uniform_sequence(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.percentile(50) == pytest.approx(50.5)
        assert recorder.percentile(99) == pytest.approx(99.01)
        assert recorder.maximum == 100.0

    def test_interleaved_record_and_query(self):
        recorder = LatencyRecorder()
        recorder.record(3.0)
        recorder.record(1.0)
        assert recorder.percentile(50) == pytest.approx(2.0)
        recorder.record(2.0)
        assert recorder.percentile(50) == pytest.approx(2.0)
        assert recorder.percentile(0) == 1.0

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        for value in range(10):
            recorder.record(float(value))
        summary = recorder.summary()
        assert set(summary) == {"mean", "p50", "p90", "p99", "p999", "max"}
        assert summary["p50"] <= summary["p99"] <= summary["max"]

    def test_empty_recorder_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError, match="no samples"):
            recorder.percentile(50)

    def test_invalid_inputs_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1.0)
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_property_percentiles_monotonic_and_bounded(self, values):
        recorder = LatencyRecorder()
        for value in values:
            recorder.record(value)
        p_values = [recorder.percentile(p) for p in (0, 25, 50, 75, 90, 99, 100)]
        assert p_values == sorted(p_values)
        assert p_values[0] == min(values)
        assert p_values[-1] == max(values)
