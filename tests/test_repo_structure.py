"""Deliverable completeness: the repo ships what the reproduction promises.

Documentation, examples, and one benchmark per paper artifact must exist
and stay in sync with DESIGN.md's experiment index.
"""

import pathlib

ROOT = pathlib.Path(__file__).parent.parent


class TestDocumentation:
    def test_top_level_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "REPORT.md"):
            path = ROOT / name
            assert path.exists(), name
            assert len(path.read_text()) > 500, f"{name} looks stubbed"

    def test_docs_folder(self):
        for name in ("architecture.md", "modeling.md", "api.md", "cookbook.md"):
            assert (ROOT / "docs" / name).exists(), name

    def test_design_confirms_paper_match(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "no title collision" in text

    def test_experiments_covers_every_artifact(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artifact in ("Table I", "Fig. 7(a)", "Fig. 7(b)", "Fig. 8",
                         "Fig. 9", "Fig. 10"):
            assert artifact in text, artifact


class TestExamples:
    def test_at_least_three_examples_with_quickstart(self):
        examples = [p.name for p in (ROOT / "examples").glob("*.py")]
        assert "quickstart.py" in examples
        assert len(examples) >= 3


class TestBenchmarks:
    def test_one_bench_per_paper_artifact(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        required = {
            "bench_table1_spec.py",
            "bench_fig7_latency.py",
            "bench_fig8_bandwidth.py",
            "bench_fig9_applications.py",
            "bench_fig10_heterogeneous.py",
        }
        assert required <= benches

    def test_ablations_from_design_doc_exist(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        design = (ROOT / "DESIGN.md").read_text()
        for name in benches:
            if "ablation" in name or "extension" in name:
                continue
            assert name in design, f"{name} missing from DESIGN.md's index"
        for listed in ("bench_ablation_write_combining.py",
                       "bench_ablation_read_dma.py",
                       "bench_ablation_double_buffering.py",
                       "bench_ablation_ba_buffer_size.py",
                       "bench_ablation_waf.py"):
            assert listed in benches


class TestPublicSurface:
    def test_package_imports_cleanly(self):
        import repro.core
        import repro.db.lsm
        import repro.db.memkv
        import repro.db.relational
        import repro.fs
        import repro.observability
        import repro.platform
        import repro.wal
        import repro.workloads

    def test_public_modules_have_docstrings(self):
        import importlib
        for module_name in ("repro.sim", "repro.host", "repro.pcie",
                            "repro.nand", "repro.ftl", "repro.ssd",
                            "repro.core", "repro.fs", "repro.wal",
                            "repro.db", "repro.workloads", "repro.bench"):
            module = importlib.import_module(module_name)
            assert module.__doc__ and len(module.__doc__) > 60, module_name
