"""Tests for the NVMe controller front end (BAR0 registers + doorbells)."""

import pytest

from repro.ssd import ControllerError, NvmeController, ULL_SSD
from repro.ssd.controller import CC_ENABLE, REG_CAP, REG_CC, REG_CSTS
from tests.helpers import Platform


def make_controller():
    platform = Platform(seed=89)
    device = platform.add_block_ssd(ULL_SSD)
    return platform, NvmeController(platform.engine, device)


class TestRegisters:
    def test_bringup_sequence(self):
        platform, ctrl = make_controller()
        assert not ctrl.ready
        ctrl.enable()
        assert ctrl.ready
        assert ctrl.read_register(REG_CSTS) & 0x1

    def test_reset_tears_down_queues(self):
        platform, ctrl = make_controller()
        ctrl.enable()
        ctrl.create_queue_pair(1)
        ctrl.write_register(REG_CC, 0)  # CC.EN=0: controller reset
        assert not ctrl.ready
        assert ctrl.queue_ids == []

    def test_read_only_registers(self):
        platform, ctrl = make_controller()
        with pytest.raises(ControllerError, match="read-only"):
            ctrl.write_register(REG_CAP, 0)
        with pytest.raises(ControllerError, match="read-only"):
            ctrl.write_register(REG_CSTS, 1)

    def test_undefined_register_access(self):
        platform, ctrl = make_controller()
        with pytest.raises(ControllerError, match="undefined"):
            ctrl.read_register(0x99)
        with pytest.raises(ControllerError, match="undefined"):
            ctrl.write_register(0x99, 1)

    def test_out_of_window_access(self):
        from repro.pcie.bar import BarAccessError
        platform, ctrl = make_controller()
        with pytest.raises(BarAccessError):
            ctrl.read_register(0x10000)


class TestQueues:
    def test_io_through_controller_queue(self):
        platform, ctrl = make_controller()
        ctrl.enable()
        queue = ctrl.create_queue_pair(1, depth=4)
        engine = platform.engine

        def scenario():
            yield engine.process(queue.write(3, b"via controller"))
            return (yield engine.process(queue.read(3, 14)))

        assert engine.run_process(scenario()) == b"via controller"

    def test_queue_requires_enabled_controller(self):
        platform, ctrl = make_controller()
        with pytest.raises(ControllerError, match="not enabled"):
            ctrl.create_queue_pair(1)

    def test_queue_id_validation(self):
        platform, ctrl = make_controller()
        ctrl.enable()
        with pytest.raises(ControllerError, match="out of range"):
            ctrl.create_queue_pair(0)
        with pytest.raises(ControllerError, match="out of range"):
            ctrl.create_queue_pair(16)
        ctrl.create_queue_pair(1)
        with pytest.raises(ControllerError, match="already exists"):
            ctrl.create_queue_pair(1)

    def test_delete_queue(self):
        platform, ctrl = make_controller()
        ctrl.enable()
        ctrl.create_queue_pair(2)
        ctrl.delete_queue_pair(2)
        with pytest.raises(ControllerError, match="no queue"):
            ctrl.queue(2)


class TestDoorbells:
    def test_doorbell_offsets_follow_spec_layout(self):
        platform, ctrl = make_controller()
        assert ctrl.doorbell_offset(0) == 0x1000
        assert ctrl.doorbell_offset(1) == 0x1010
        assert ctrl.doorbell_offset(2) == 0x1020

    def test_ring_doorbell_counts(self):
        platform, ctrl = make_controller()
        ctrl.enable()
        ctrl.create_queue_pair(1)
        ctrl.write_register(ctrl.doorbell_offset(1), 5)
        assert ctrl.stats.doorbell_rings == 1

    def test_doorbell_for_missing_queue_rejected(self):
        platform, ctrl = make_controller()
        ctrl.enable()
        with pytest.raises(ControllerError, match="nonexistent"):
            ctrl.write_register(ctrl.doorbell_offset(3), 1)

    def test_misaligned_doorbell_rejected(self):
        platform, ctrl = make_controller()
        ctrl.enable()
        with pytest.raises(ControllerError, match="misaligned"):
            ctrl.write_register(0x1004, 1)
