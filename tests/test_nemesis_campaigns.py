"""The nemesis campaign matrix: every fault class x victim role x timing.

Three layers: the registered campaign matrix itself (every fault class
and victim role, early and late crash timings, all deterministic seeds),
a parametrized crash-time x fault-class sweep built on the fly, and the
run-matrix determinism gate — the same legs (warm-pool legs included)
must merge to byte-identical results at ``jobs=1`` and ``jobs=2``,
snapshot reuse on or off.
"""

import pytest

from repro.bench.runner import run_legs
from repro.nemesis import CAMPAIGNS, fault, run_campaign
from repro.nemesis.campaign import CampaignSpec
from repro.nemesis.legs import WARM_CAMPAIGNS, nemesis_matrix


def _assert_clean(result: dict) -> None:
    assert result["ok"], result["analysis"]["violations"]
    assert result["sanitizer"]["violations"] == 0
    for name, info in result["recovery"].items():
        if info["checked"]:
            assert info["missing"] == 0, f"stream {name} lost acked records"
            assert info["torn"] == 0, f"stream {name} recovered torn records"


# -- the registered matrix ---------------------------------------------------


def test_matrix_covers_fault_classes_and_victim_roles():
    """ISSUE 6 acceptance: a 12+-scenario matrix spanning the catalog."""
    assert len(CAMPAIGNS) >= 12
    kinds = {spec.kind for c in CAMPAIGNS.values() for spec in c.faults}
    assert kinds == {"power_loss", "failover_crash", "partition", "degrade",
                     "slow_die", "gc_storm", "map_pressure", "quorum_loss"}
    victims = {
        dict(spec.kwargs).get("victim", "")
        for c in CAMPAIGNS.values() for spec in c.faults
    }
    assert any(v.startswith("primary:") for v in victims)
    assert any(v.startswith("replica:") for v in victims)
    # Early and late crash timings for the same fault class + victim role.
    times = sorted(spec.faults[0].at_us for name, spec in CAMPAIGNS.items()
                   if name.startswith("power-loss-primary"))
    assert times[0] < 500.0 < times[-1]


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_registered_campaign_passes(name):
    result = run_campaign(CAMPAIGNS[name])
    _assert_clean(result)
    assert sum(result["records_acked"].values()) > 0


def test_campaigns_are_deterministic():
    name = "failover-crash-early"
    first = run_campaign(CAMPAIGNS[name])
    second = run_campaign(CAMPAIGNS[name])
    assert first == second


def test_crash_respawns_keep_healthy_streams_moving():
    """Regression: a node crash purges the *shared* kernel, killing
    replica pipelines and stranding WAL locks of streams the crash never
    touched.  After the respawn/crash_reset dance, the healthy stream
    must keep acking — before the fix it froze at its pre-crash count."""
    result = run_campaign(CAMPAIGNS["power-loss-primary-early"])
    _assert_clean(result)
    acked = result["records_acked"]
    assert acked["wal1"] >= acked["wal0"] // 2, acked
    assert result["respawns"] > 0


def test_quorum_loss_costs_availability_not_durability():
    """Two sequential primary crashes on a 3-node pool leave no spare:
    the stream must become unavailable (failover impossible, clients
    dropped), but every record acked before the collapse must still be
    readable from the surviving replica."""
    result = run_campaign(CAMPAIGNS["quorum-loss-double"])
    _assert_clean(result)
    assert result["analysis"]["failovers_impossible"] >= 1
    assert len(result["analysis"]["crashes"]) == 2
    info = result["recovery"]["wal0"]
    assert info["checked"] and info["recovered"] == info["acked"]


def test_map_pressure_forces_typed_fallback():
    result = run_campaign(CAMPAIGNS["map-pressure-replica"])
    _assert_clean(result)
    assert result["ba_fallbacks"] >= 1


# -- crash-time x fault-class sweep ------------------------------------------

SWEEP_FAULTS = ("power_loss", "partition", "slow_die")
SWEEP_ROLES = ("primary", "replica")
SWEEP_TIMES_US = (180.0, 650.0, 1150.0)


@pytest.mark.parametrize("at_us", SWEEP_TIMES_US)
@pytest.mark.parametrize("role", SWEEP_ROLES)
@pytest.mark.parametrize("kind", SWEEP_FAULTS)
def test_fault_by_role_by_time_sweep(kind, role, at_us):
    """Every (fault class, victim role, injection time) cell holds the
    durability contract.  The seed derives from the cell so each point
    is individually replayable."""
    extra = {}
    if kind == "partition":
        extra["duration_us"] = 300.0
    if kind == "slow_die":
        extra.update(die_index=0, factor=6.0, duration_us=400.0)
    seed = (7000 + SWEEP_FAULTS.index(kind) * 100
            + SWEEP_ROLES.index(role) * 10
            + SWEEP_TIMES_US.index(at_us))
    spec = CampaignSpec(
        name=f"sweep-{kind}-{role}-{at_us:g}",
        seed=seed,
        duration_us=1600.0,
        drain_us=500.0,
        faults=(fault(kind, at_us, victim=f"{role}:wal0", **extra),),
    )
    result = run_campaign(spec)
    _assert_clean(result)
    assert sum(result["records_acked"].values()) > 0
    if kind == "power_loss":
        assert result["analysis"]["crashes"], "crash fault never landed"
        assert result["analysis"]["failovers"] >= 1


# -- run-matrix determinism --------------------------------------------------


def test_matrix_is_byte_identical_across_jobs_and_snapshot_reuse():
    """The determinism gate for the full nemesis matrix, warm legs
    included: serial, parallel, and no-snapshot-reuse runs must merge to
    the same canonical bytes."""
    legs = nemesis_matrix()
    assert {f"nemesis:warm:{name}" for name in WARM_CAMPAIGNS} <= {
        leg.leg_id for leg in legs
    }
    serial = run_legs(legs, jobs=1, reuse_snapshots=True)
    parallel = run_legs(legs, jobs=2, reuse_snapshots=True)
    rewarmed = run_legs(legs, jobs=1, reuse_snapshots=False)
    assert serial.canonical_results() == parallel.canonical_results()
    assert serial.canonical_results() == rewarmed.canonical_results()
    assert serial.cache["hits"] >= 1  # the warm legs shared one snapshot


def test_warm_pool_campaign_matches_spec_shape():
    """Warm campaigns must describe the same pool the warm spec builds,
    or the snapshot would silently run a different scenario."""
    for name in WARM_CAMPAIGNS:
        spec = CAMPAIGNS[name]
        assert spec.devices == 4
        assert spec.streams == 2
