"""Crash-point sweeps: the durability contract holds at *every* moment.

For a stream of acknowledged commits, a power failure at an arbitrary
instant must preserve exactly the records whose commit completed before
the crash (later records may or may not have made it — they were never
acknowledged).  We sweep crash times across whole workloads for BA-WAL
and the synchronous block WAL, and check the weaker prefix property for
asynchronous commit.
"""

import pytest

from repro.core import CrashHarness
from repro.db.memkv import MemKV
from repro.platform import Platform
from repro.sim.units import USEC
from repro.ssd import ULL_SSD
from repro.wal import BaWAL, BlockWAL, CommitMode


def ba_wal_platform(seed):
    platform = Platform(seed=seed)
    wal = BaWAL(platform.engine, platform.api, area_pages=8192)
    platform.engine.run_process(wal.start())
    return platform, wal


def block_wal_platform(seed, mode=CommitMode.SYNCHRONOUS):
    platform = Platform(seed=seed)
    device = platform.add_block_ssd(ULL_SSD, name=f"log-{seed}")
    wal = BlockWAL(platform.engine, device, platform.cpu, mode=mode,
                   area_pages=8192)
    return platform, wal


def logging_workload(platform, wal, acknowledged, count=40, gap_us=3.0):
    """Append+commit ``count`` records; record ack times in ``acknowledged``."""
    engine = platform.engine

    def workload():
        for index in range(count):
            payload = b"record-%04d" % index
            lsn = yield engine.process(wal.append(payload))
            yield engine.process(wal.commit(lsn))
            acknowledged.append((engine.now, payload))
            yield engine.timeout(gap_us * USEC)

    return workload()


def recovered_payloads(platform, wal_factory):
    """Build a fresh WAL over the post-crash device state and recover."""
    engine = platform.engine
    fresh = wal_factory()
    return [payload for _lsn, payload in engine.run_process(fresh.recover())]


@pytest.mark.parametrize("crash_us", [1, 7, 23, 55, 90, 140, 200, 500])
def test_ba_wal_crash_sweep(crash_us):
    platform, wal = ba_wal_platform(seed=100 + crash_us)
    acknowledged = []
    harness = CrashHarness(platform)
    outcome = harness.crash_at(crash_us * USEC,
                               logging_workload(platform, wal, acknowledged))
    assert outcome.report.device_dumps["2B-SSD"] is True
    recovered = recovered_payloads(
        platform, lambda: BaWAL(platform.engine, platform.api, area_pages=8192))
    must_survive = [p for t, p in acknowledged if t <= outcome.crash_time]
    # Every acknowledged commit survives...
    assert recovered[:len(must_survive)] == must_survive
    # ...and anything extra is an unacknowledged prefix continuation.
    extras = recovered[len(must_survive):]
    assert len(extras) <= 1


@pytest.mark.parametrize("crash_us", [5, 40, 120, 400, 1200])
def test_block_wal_sync_crash_sweep(crash_us):
    platform, wal = block_wal_platform(seed=200 + crash_us)
    device = wal.device
    acknowledged = []
    harness = CrashHarness(platform)
    outcome = harness.crash_at(
        crash_us * USEC,
        logging_workload(platform, wal, acknowledged, gap_us=1.0),
    )
    fresh = BlockWAL(platform.engine, device, platform.cpu, area_pages=8192)
    recovered = [p for _l, p in platform.engine.run_process(fresh.recover())]
    must_survive = [p for t, p in acknowledged if t <= outcome.crash_time]
    assert recovered[:len(must_survive)] == must_survive
    assert len(recovered) - len(must_survive) <= 1


@pytest.mark.parametrize("crash_us", [5, 25, 60])
def test_block_wal_async_may_lose_acknowledged(crash_us):
    platform, wal = block_wal_platform(seed=300 + crash_us,
                                       mode=CommitMode.ASYNCHRONOUS)
    device = wal.device
    acknowledged = []
    harness = CrashHarness(platform)
    harness.crash_at(
        crash_us * USEC,
        logging_workload(platform, wal, acknowledged, gap_us=0.5),
    )
    fresh = BlockWAL(platform.engine, device, platform.cpu, area_pages=8192)
    recovered = [p for _l, p in platform.engine.run_process(fresh.recover())]
    all_payloads = [p for _t, p in acknowledged]
    # Weaker contract: recovery yields a prefix of the appended stream —
    # possibly shorter than what was acknowledged (the async risk window).
    assert recovered == all_payloads[:len(recovered)]


def test_crash_mid_segment_flush_preserves_stream():
    """Crash while BA_FLUSH is moving a sealed segment to NAND: the sealed
    half is restored from the BA-buffer image and nothing is lost."""
    from repro.core import BaParams
    params = BaParams(buffer_bytes=64 * 1024)  # 32 KiB halves
    platform = Platform(ba_params=params, seed=400)
    wal = BaWAL(platform.engine, platform.api, area_pages=8192)
    platform.engine.run_process(wal.start())
    acknowledged = []
    # ~400-byte records: a half seals roughly every 78 records.
    engine = platform.engine

    def workload():
        for index in range(120):
            payload = b"r%04d" % index + b"." * 380
            lsn = yield engine.process(wal.append(payload))
            yield engine.process(wal.commit(lsn))
            acknowledged.append((engine.now, payload))

    harness = CrashHarness(platform)
    # Crash shortly after the first segment switch begins.
    outcome = harness.crash_at(700 * USEC, workload())
    recovered = recovered_payloads(
        platform, lambda: BaWAL(platform.engine, platform.api, area_pages=8192))
    must_survive = [p for t, p in acknowledged if t <= outcome.crash_time]
    assert len(must_survive) > 0
    assert recovered[:len(must_survive)] == must_survive


def test_crash_recovery_end_to_end_with_engine():
    """Full-stack: a Redis-like store crashes mid-workload and replays its
    AOF to exactly the acknowledged state."""
    platform = Platform(seed=500)
    wal = BaWAL(platform.engine, platform.api, area_pages=8192,
                double_buffer=False)
    engine = platform.engine
    engine.run_process(wal.start())
    store = MemKV(engine, wal)
    acknowledged = {}

    def workload():
        for index in range(60):
            key = f"k{index % 7}"
            value = b"v%04d" % index
            yield engine.process(store.set(key, value))
            acknowledged[key] = value

    harness = CrashHarness(platform)
    outcome = harness.crash_at(700 * USEC, workload())
    acked_at_crash = dict(acknowledged)  # dict filled only on ack
    fresh_wal = BaWAL(engine, platform.api, area_pages=8192, double_buffer=False)
    recovered = MemKV(engine, fresh_wal)
    engine.run_process(recovered.recover())
    state = recovered.snapshot()
    for key, value in acked_at_crash.items():
        # Acknowledged value, or one the crash caught mid-acknowledgment.
        assert state.get(key) is not None
    # Every acknowledged key's recovered value is the acked one or newer
    # in the (deterministic) update order — with per-key monotonic values
    # the recovered value must be >= acked value.
    for key, value in acked_at_crash.items():
        assert state[key] >= value
