"""Mutant: a generator yields inside its finally suite.

Expected: exactly one GEN003 at the yield in the ``finally``.  When the
kernel closes the generator (crash purge, AnyOf loser), GeneratorExit
is delivered at the current yield; resuming execution lands in the
finally, and the yield there either raises RuntimeError or silently
abandons the cleanup — the PR-6 tracing-leak hazard class.
"""

from typing import Iterator

from repro.sim.engine import Event


def flush_on_exit(engine, device) -> Iterator[Event]:
    try:
        yield engine.process(device.write(0, b"x"))
    finally:
        yield engine.process(device.flush())  # BUG: GeneratorExit lands here
    return None
