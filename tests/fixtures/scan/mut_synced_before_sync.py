"""Mutant: durable watermark published before the BA_SYNC barrier.

Expected: exactly one DUR001 at the ``_synced`` store in ``commit``.
"""

from typing import Iterator

from repro.sim.engine import Event


class MutantBaWAL:
    def __init__(self, engine, api) -> None:
        self.engine = engine
        self.api = api
        self._synced = 0
        self._tail = 0

    def commit(self, lsn: int) -> Iterator[Event]:
        if lsn <= self._synced:
            return None
        target = self._tail
        self._synced = max(self._synced, target)  # BUG: ack'd pre-barrier
        yield self.engine.process(self.api.ba_sync(0))
        return None


def drive(engine, wal, lsn) -> Iterator[Event]:
    yield engine.process(wal.commit(lsn))
    return None
