"""Mutant: a yield between the die release and the state mutation.

Expected: exactly one LOCK001 at the ``_data`` store.  The post-release
tail is atomic only up to the next yield — ``Resource.release`` defers
waiter wake-ups, so code until the next yield runs under mutual
exclusion, but yielding hands the die's next holder the CPU first.
"""

from typing import Iterator

from repro.sim import Resource
from repro.sim.engine import Event


class MutantArray:
    def __init__(self, engine, ndies: int) -> None:
        self.engine = engine
        self._dies = [Resource(engine) for _ in range(ndies)]
        self._data: dict[int, bytes] = {}

    def program_page(self, die_index: int, ppn: int,
                     data: bytes) -> Iterator[Event]:
        die_res = self._dies[die_index]
        die_req = die_res.request()
        yield die_req
        try:
            yield self.engine.timeout(1e-4)
        finally:
            die_res.release(die_req)
        yield self.engine.timeout(1e-6)  # BUG: atomic tail broken here
        self._data[ppn] = data
        return None
