"""Clean fixture: every contract pattern done right — zero findings.

Exercises the no-false-positive machinery: the durable-watermark guard
fast path, barrier-then-publish ordering, an interprocedural barrier
(``commit`` called from a worker's ack path), extent registration after
fsync, and a die-shared mutation in the post-release atomic tail.
"""

from typing import Iterator

from repro.sim import Resource
from repro.sim.engine import Event


class CleanWAL:
    def __init__(self, engine, api) -> None:
        self.engine = engine
        self.api = api
        self._synced = 0
        self._tail = 0

    def commit(self, lsn: int) -> Iterator[Event]:
        if lsn <= self._synced:
            return None  # durable-guard fast path: already synced
        target = self._tail
        yield self.engine.process(self.api.ba_sync(0))
        self._synced = max(self._synced, target)
        return None


class CleanWorker:
    def __init__(self, engine, wal, queue) -> None:
        self.engine = engine
        self.wal = wal
        self.queue = queue

    def run(self) -> Iterator[Event]:
        while True:
            item = yield self.queue.get()
            if item is None:
                return None
            lsn, ack = item
            try:
                # Interprocedural barrier: commit() syncs on every path.
                yield self.engine.process(self.wal.commit(lsn))
            except Exception as exc:  # noqa: BLE001 - forwarded to waiter
                ack.fail(exc)
            else:
                ack.succeed()


class CleanStorage:
    def __init__(self, engine, device, page_size: int) -> None:
        self.engine = engine
        self.device = device
        self.page_size = page_size
        self._next_lpn = 8
        self._extents: dict[int, tuple[int, int]] = {}

    def write_table(self, file_id: int, blob: bytes) -> Iterator[Event]:
        npages = -(-len(blob) // self.page_size)
        lpn = self._next_lpn
        self._next_lpn += npages
        yield self.engine.process(self.device.write(lpn, blob))
        yield self.engine.process(self.device.fsync())
        self._extents[file_id] = (lpn, npages)
        return None


class CleanArray:
    def __init__(self, engine, ndies: int) -> None:
        self.engine = engine
        self._dies = [Resource(engine) for _ in range(ndies)]
        self._data: dict[int, bytes] = {}

    def program_page(self, die_index: int, ppn: int,
                     data: bytes) -> Iterator[Event]:
        die_res = self._dies[die_index]
        die_req = die_res.request()
        yield die_req
        try:
            yield self.engine.timeout(1e-4)
        finally:
            die_res.release(die_req)
        self._data[ppn] = data  # post-release atomic tail
        return None
