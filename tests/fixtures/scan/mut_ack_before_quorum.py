"""Mutant: client ack succeeds before the quorum barrier completes.

Expected: exactly one DUR001 at the ``ack.succeed()`` in ``commit``.
"""

from typing import Iterator

from repro.sim.engine import Event


class MutantReplicatedWAL:
    def __init__(self, engine, legs, quorum: int) -> None:
        self.engine = engine
        self.legs = legs
        self.quorum = quorum
        self._quorum_durable = 0

    def commit(self, lsn: int, ack) -> Iterator[Event]:
        if lsn <= self._quorum_durable:
            return None
        ack.succeed()  # BUG: acknowledged before any replica confirmed
        acks = [self.engine.event() for _leg in self.legs]
        yield self.engine.process(self._await_quorum(acks))
        self._quorum_durable = max(self._quorum_durable, lsn)
        return None

    def _await_quorum(self, acks) -> Iterator[Event]:
        yield self.engine.all_of(acks)
        return None
