"""Mutant: a wall-clock sleep two calls away from a kernel process.

Expected: exactly one GEN002 on ``run`` (the kernel generator), with
the sleeper reached through ``_throttle -> _backoff``.
"""

import time
from typing import Iterator

from repro.sim.engine import Event


def _backoff(delay: float) -> None:
    time.sleep(delay)  # wall-clock block, invisible to the sim kernel


def _throttle(delay: float) -> None:
    _backoff(delay)


class MutantPump:
    def __init__(self, engine) -> None:
        self.engine = engine

    def run(self) -> Iterator[Event]:
        yield self.engine.timeout(1.0)
        _throttle(0.01)  # BUG: blocks every co-scheduled process for real
        return None
