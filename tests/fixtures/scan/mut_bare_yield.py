"""Mutant: a kernel process yields a bare (non-event) value.

Expected: exactly one GEN001 at the bare ``yield`` in ``pump``.
"""

from typing import Iterator

from repro.sim.engine import Event


def pump(engine, queue) -> Iterator[Event]:
    while True:
        item = yield queue.get()
        if item is None:
            return None
        yield  # BUG: the kernel has nothing to schedule; the process starves
