"""Mutant: the flush barrier before the manifest-extent publish was dropped.

Expected: exactly one DUR002 at the ``_extents`` store in ``write_table``.
"""

from typing import Iterator

from repro.sim.engine import Event


class MutantTableStorage:
    def __init__(self, engine, device, page_size: int) -> None:
        self.engine = engine
        self.device = device
        self.page_size = page_size
        self._next_lpn = 8
        self._extents: dict[int, tuple[int, int]] = {}

    def _allocate(self, npages: int) -> int:
        lpn = self._next_lpn
        self._next_lpn += npages
        return lpn

    def write_table(self, file_id: int, blob: bytes) -> Iterator[Event]:
        npages = -(-len(blob) // self.page_size)
        lpn = self._allocate(npages)
        yield self.engine.process(self.device.write(lpn, blob))
        # BUG: no fsync; a crash here leaves the manifest naming torn pages.
        self._extents[file_id] = (lpn, npages)
        return None
