"""Mutant: die-shared page store mutated without holding the die.

Expected: exactly one LOCK001 at the ``_data`` store in
``program_page_racy``; the properly guarded ``program_page`` in the same
module must stay clean (no false positive on the correct pattern).
"""

from typing import Iterator

from repro.sim import Resource
from repro.sim.engine import Event


class MutantArray:
    def __init__(self, engine, ndies: int) -> None:
        self.engine = engine
        self._dies = [Resource(engine) for _ in range(ndies)]
        self._data: dict[int, bytes] = {}

    def program_page(self, die_index: int, ppn: int,
                     data: bytes) -> Iterator[Event]:
        die_res = self._dies[die_index]
        die_req = die_res.request()
        yield die_req
        try:
            yield self.engine.timeout(1e-4)
        finally:
            die_res.release(die_req)
        self._data[ppn] = data  # OK: post-release atomic tail
        return None

    def program_page_racy(self, die_index: int, ppn: int,
                          data: bytes) -> Iterator[Event]:
        yield self.engine.timeout(1e-4)
        self._data[ppn] = data  # BUG: die-shared map, no reservation held
        return None
