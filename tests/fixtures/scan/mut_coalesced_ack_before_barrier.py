"""Mutant: a group-commit committer acks a parked writer before the
covering quorum barrier completes.

Shaped like the gateway's commit coalescer: writers register an ack
event and park; the committer carves a batch and must dominate every
``ack.succeed()`` with the yielded quorum barrier covering the batch's
max LSN.  Here the first ack fires *before* the barrier — the coalesced
analogue of ``mut_ack_before_quorum``.  The post-barrier ack loop is
correct and must stay unflagged.

Expected: exactly one DUR001 at the early ``ack.succeed()`` in
``_committer``.
"""

from typing import Iterator

from repro.sim.engine import Event


class MutantCoalescer:
    def __init__(self, engine, legs, quorum: int) -> None:
        self.engine = engine
        self.legs = legs
        self.quorum = quorum
        self.pending: list = []  # (lsn, ack) registered by parked writers

    def register(self, lsn: int, ack) -> None:
        self.pending.append((lsn, ack))

    def _committer(self) -> Iterator[Event]:
        while self.pending:
            batch, self.pending = self.pending, []
            target = max(lsn for lsn, _ack in batch)
            first_lsn, first_ack = batch[0]
            first_ack.succeed(first_lsn)  # BUG: acked before the barrier
            # ONE quorum barrier covers every batched registration...
            yield self.engine.process(self._await_quorum(target))
            # ...so the remaining acks are correctly dominated by it.
            for lsn, ack in batch[1:]:
                ack.succeed(lsn)
        return None

    def _await_quorum(self, lsn: int) -> Iterator[Event]:
        acks = [self.engine.event() for _leg in self.legs]
        yield self.engine.all_of(acks[: self.quorum])
        return None
