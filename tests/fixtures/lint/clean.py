"""Fixture: clean simulation code plus pragma-suppressed hazards.

``repro lint`` must exit 0 on this file: idiomatic kernel usage is not
flagged, and the two real hazards carry ``# reprolint: disable`` pragmas.
"""

import time


def well_behaved(engine, rng, dies):
    t0 = engine.now
    for die in sorted(dies):
        yield engine.process(touch(engine, die))
    delay = rng.stream("jitter").expovariate(1e6)
    yield engine.timeout(delay)
    wall = time.perf_counter()  # reprolint: disable=DET001
    time.sleep(0)  # reprolint: disable=all
    return engine.now - t0, wall


def touch(engine, die):
    yield engine.timeout(1e-6 * (die + 1))
