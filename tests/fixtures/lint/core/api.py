"""Fixture: OBS-class violations in a file shaped like core/api.py.

The linter keys OBS101 off the ``core/api.py`` path suffix, so this
fixture lives under a ``core/`` directory.
"""

from repro.obs import tracing


class FakeApi:
    def ba_pin(self, entry_id):  # OBS101: no tracing span/observe at all
        yield self.engine.timeout(1e-6)
        return entry_id

    def ba_flush(self, entry_id):
        tracing.observe("core.api.ba_flush", 1.0)  # OBS102: unguarded
        yield self.engine.timeout(1e-6)
        return entry_id

    def ba_sync(self, entry_id):
        if tracing.enabled:
            tracing.observe("BA SYNC LATENCY", 1.0)  # OBS103: bad span name
        yield self.engine.timeout(1e-6)
        return entry_id

    def ba_read_dma(self, entry_id):
        if tracing.enabled:
            # OBS104: well-formed name, but "gpu" is not a registered layer.
            tracing.observe("gpu.dma.copy", 1.0)
        yield self.engine.timeout(1e-6)
        return entry_id
