"""Fixture: one known violation per SIM rule (kernel misuse)."""

import time


def hazards(engine):
    engine.timeout(5)  # SIM101: event discarded, never waited on
    time.sleep(0.01)  # SIM102
    yield engine.timeout(-3)  # SIM103
    if engine.now == 10.0:  # SIM104
        return True
    return False


def leaky(engine, device):
    try:
        yield engine.timeout(1)
    finally:
        yield device.flush()  # SIM105: GeneratorExit lands on this yield
