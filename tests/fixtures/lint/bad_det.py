"""Fixture: one known violation per DET rule (determinism hazards).

Line numbers matter — tests/test_reprolint.py asserts rule IDs against
this file.  Keep each violation on its own clearly-marked line.
"""

import os
import random
import time
from datetime import datetime


def hazards(engine, dies):
    started = time.perf_counter()  # DET001
    stamp = datetime.now()  # DET001
    jitter = random.random()  # DET002
    seed = os.urandom(8)  # DET003
    for die in {0, 1, 2}:  # DET004
        engine.process(idle(die))
    bucket = hash("stable-key")  # DET005
    ordered = sorted(dies, key=id)  # DET006
    return started, stamp, jitter, seed, bucket, ordered


def idle(die):
    yield die
