"""Quorum-replicated WAL semantics: acks, LSN divergence, quorum loss.

The commit contract: an acked LSN is durable on at least ``quorum`` legs.
Replica legs track their *own* LSNs (a block-path fallback leg lays
records out without segment padding, so its offsets diverge from a
byte-path primary's), and a commit that can no longer reach quorum must
fail loudly rather than hang.
"""

import pytest

from repro.cluster import DevicePool, QuorumLossError, ReplicatedBaWAL
from repro.cluster.driver import make_payload
from repro.core import BaParams
from repro.sim.units import KiB

SMALL_BA = BaParams(buffer_bytes=64 * KiB)


def small_pool(devices=3, **kwargs):
    kwargs.setdefault("ba_params", SMALL_BA)
    kwargs.setdefault("area_pages", 64)
    return DevicePool(devices=devices, seed=23, **kwargs)


def append_and_commit(pool, stream, count, payload_bytes=256):
    engine = pool.engine

    def run():
        lsn = 0
        for seq in range(count):
            payload = make_payload(stream.name, 0, seq, payload_bytes)
            lsn = yield engine.process(stream.append(payload))
            yield engine.process(stream.commit(lsn))
        return lsn

    return engine.run_process(run())


class TestQuorumCommit:
    def test_default_quorum_is_majority(self):
        pool = small_pool()
        stream = pool.engine.run_process(pool.open_stream("wal0", replicas=3))
        assert stream.quorum == 2

    def test_commit_advances_durable_lsn(self):
        pool = small_pool()
        stream = pool.engine.run_process(pool.open_stream("wal0", replicas=2))
        lsn = append_and_commit(pool, stream, 4)
        assert stream.durable_lsn == lsn
        assert stream.tail_lsn == lsn

    def test_recommit_of_durable_lsn_is_free(self):
        pool = small_pool()
        stream = pool.engine.run_process(pool.open_stream("wal0", replicas=2))
        lsn = append_and_commit(pool, stream, 2)
        before = pool.net.stats.control_messages
        pool.engine.run_process(stream.commit(lsn))
        assert pool.net.stats.control_messages == before

    def test_every_leg_holds_the_same_payload_sequence(self):
        pool = small_pool()
        stream = pool.engine.run_process(pool.open_stream("wal0", replicas=3))
        append_and_commit(pool, stream, 6)
        logs = []
        for leg in stream.legs():
            records = pool.engine.run_process(leg.wal.recover())
            logs.append([payload for _lsn, payload in records])
        assert logs[0] == logs[1] == logs[2]
        assert len(logs[0]) == 6

    def test_quorum_out_of_range_rejected(self):
        pool = small_pool()
        with pytest.raises(ValueError, match="quorum"):
            pool.engine.run_process(
                pool.open_stream("wal0", replicas=2, quorum=3))


class _BrokenWal:
    """A replica WAL that still applies appends but whose device errors
    on every sync — the shape of a leg failing mid-commit."""

    def __init__(self, engine):
        self.engine = engine
        self.lsn = 0

    def append(self, payload):
        yield self.engine.timeout(1e-9)
        self.lsn += len(payload)
        return self.lsn

    def commit(self, lsn):
        raise IOError("replica device gone")
        yield  # pragma: no cover - makes this a generator


class TestQuorumLoss:
    def test_commit_fails_once_quorum_unreachable(self):
        pool = small_pool()
        stream = pool.engine.run_process(pool.open_stream(
            "wal0", replicas=2, quorum=2))
        # Break the only replica: a 2-of-2 commit can no longer succeed.
        stream.replica_legs[0].wal = _BrokenWal(pool.engine)
        engine = pool.engine

        def run():
            lsn = yield engine.process(stream.append(b"x" * 64))
            yield engine.process(stream.commit(lsn))

        with pytest.raises(QuorumLossError, match="unreachable"):
            engine.run_process(run())

    def test_quorum_one_survives_a_broken_replica(self):
        pool = small_pool()
        stream = pool.engine.run_process(pool.open_stream(
            "wal0", replicas=2, quorum=1))
        stream.replica_legs[0].wal = _BrokenWal(pool.engine)
        lsn = append_and_commit(pool, stream, 1, payload_bytes=64)
        assert stream.durable_lsn == lsn


class TestLsnDivergence:
    def exhaust_and_open(self, pool):
        """Force the replica onto the block path by draining node1's pairs."""
        for i in range(4):
            pool.engine.run_process(pool.open_stream(
                f"filler{i}", replicas=1, on_nodes=["node1"]))
        return pool.engine.run_process(pool.open_stream(
            "wal0", replicas=2, on_nodes=["node0", "node1"]))

    def test_block_fallback_replica_diverges_but_acks(self):
        pool = small_pool(devices=2)
        stream = self.exhaust_and_open(pool)
        assert stream.primary.kind == "ba"
        assert stream.replica_legs[0].kind == "block"
        # Enough records to cross a segment boundary on the BA primary,
        # whose LSNs then include padding the block leg never emits.
        lsn = append_and_commit(pool, stream, 40)
        assert stream.durable_lsn == lsn
        assert stream.primary.wal.tail_lsn != stream.replica_legs[0].wal.tail_lsn

    def test_divergent_legs_recover_identical_payloads(self):
        pool = small_pool(devices=2)
        stream = self.exhaust_and_open(pool)
        append_and_commit(pool, stream, 40)
        primary = pool.engine.run_process(stream.primary.wal.recover())
        replica = pool.engine.run_process(stream.replica_legs[0].wal.recover())
        assert ([p for _l, p in primary] == [p for _l, p in replica])
        assert len(primary) == 40
