"""Static-analysis gates for the whole tree (tier-1).

``repro lint`` must pass on ``src/repro`` unconditionally — it is pure
stdlib and always available.  ruff and mypy are configured in
``pyproject.toml`` but are optional in this environment; when installed
they must also pass on the configured baseline, and when absent their
gates skip rather than fail (no network installs in CI images).
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent
SRC = REPO / "src" / "repro"


def tool_available(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


class TestReprolintGate:
    def test_src_tree_is_lint_clean_in_process(self):
        from repro.analysis import lint

        violations = lint.lint_paths([SRC])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_cli_exit_code_clean_tree(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(SRC)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_cli_exit_code_dirty_tree(self):
        fixtures = REPO / "tests" / "fixtures" / "lint"
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(fixtures)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 1
        assert "DET001" in result.stdout


class TestRuffGate:
    @pytest.mark.skipif(not tool_available("ruff"), reason="ruff not installed")
    def test_ruff_baseline_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "ruff", "check", str(SRC)],
            capture_output=True, text=True, cwd=REPO,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_ruff_config_present(self):
        config = (REPO / "pyproject.toml").read_text()
        assert "[tool.ruff" in config


class TestMypyGate:
    @pytest.mark.skipif(not tool_available("mypy"), reason="mypy not installed")
    def test_mypy_baseline_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "mypy", str(SRC)],
            capture_output=True, text=True, cwd=REPO,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_mypy_config_present(self):
        config = (REPO / "pyproject.toml").read_text()
        assert "[tool.mypy]" in config
