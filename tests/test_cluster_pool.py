"""Device pool: BA budgeting, block-WAL fallback, and stream lifecycle.

Table I gives each 2B-SSD an eight-entry mapping table; a BA-WAL stream
pins two entries, so the fifth stream on one node must fall back to the
block path.  The pool's bookkeeping (entry pairs, log areas) has to stay
exact through open/close cycles and through pins it does not own.
"""

import pytest

from repro.cluster import DevicePool, run_replicated_logging
from repro.cluster.errors import ClusterError
from repro.core import BaParams
from repro.sim.units import KiB

PAGE = 4096

SMALL_BA = BaParams(buffer_bytes=64 * KiB)  # 8 KiB segments, fast trims


def small_pool(devices=1, **kwargs):
    kwargs.setdefault("ba_params", SMALL_BA)
    kwargs.setdefault("area_pages", 16)
    return DevicePool(devices=devices, seed=5, **kwargs)


class TestBudget:
    def test_fifth_stream_on_one_node_falls_back_to_block(self):
        pool = small_pool()
        streams = [pool.engine.run_process(pool.open_stream(f"wal{i}",
                                                            replicas=1))
                   for i in range(5)]
        kinds = [stream.primary.kind for stream in streams]
        assert kinds == ["ba", "ba", "ba", "ba", "block"]
        assert pool.ba_fallbacks == 1

    def test_closing_a_stream_returns_its_budget(self):
        pool = small_pool()
        for i in range(4):
            pool.engine.run_process(pool.open_stream(f"wal{i}", replicas=1))
        pool.engine.run_process(pool.close_stream("wal2"))
        fresh = pool.engine.run_process(pool.open_stream("fresh", replicas=1))
        assert fresh.primary.kind == "ba"
        assert fresh.primary.pair == 2  # the exact pair wal2 released

    def test_external_pins_steal_the_budget(self):
        # A tenant outside the pool pins entries directly; the pool's
        # reservation check sees the table short and falls back.
        pool = small_pool()
        node = pool.nodes["node0"]
        engine = pool.engine

        def pin_external():
            for eid in range(7):
                # Above the pool's area allocator, one page per pin.
                yield engine.process(node.platform.api.ba_pin(
                    100 + eid, (8 + eid) * PAGE, 5000 + 2 * eid, PAGE))

        engine.run_process(pin_external())
        stream = engine.run_process(pool.open_stream("wal0", replicas=1))
        assert stream.primary.kind == "block"
        assert pool.ba_fallbacks == 1

    def test_race_lost_to_external_pin_unwinds_and_falls_back(self):
        # The pool reserves a pair, starts trimming, and *then* an outside
        # tenant fills the table: wal.start() hits MappingTableFullError
        # mid-pin and the leg must unwind whatever it pinned and fall back.
        # The tenant grabs slots synchronously so it always wins the race.
        pool = small_pool()
        node = pool.nodes["node0"]
        engine = pool.engine
        table = node.platform.device.mapping_table
        opened = engine.process(pool.open_stream("wal0", replicas=1))

        def steal():
            yield engine.timeout(1e-9)  # after the reserve, inside the trim
            for eid in range(7):
                table.add(100 + eid, (8 + eid) * PAGE, 5000 + 2 * eid, PAGE)

        engine.process(steal())
        stream = engine.run(until=opened)
        assert stream.primary.kind == "block"
        assert pool.ba_fallbacks == 1
        # The reserved pair came back: only the external pins hold slots.
        assert table.slots_free() == 1
        assert node.try_peek_pair() is None  # 1 free slot < a pair

    def test_pair_double_release_rejected(self):
        pool = small_pool()
        node = pool.nodes["node0"]
        pair = node.try_reserve_pair()
        node.release_pair(pair)
        with pytest.raises(ClusterError, match="already free"):
            node.release_pair(pair)

    def test_log_area_allocation_bounded_by_geometry(self):
        pool = small_pool()
        node = pool.nodes["node0"]
        geometry = node.platform.device.profile.geometry
        total = (geometry.channels * geometry.dies_per_channel
                 * geometry.blocks_per_die * geometry.pages_per_block)
        node.alloc_area(total - 8)
        with pytest.raises(ClusterError, match="out of log area"):
            node.alloc_area(16)


class TestLifecycle:
    def test_duplicate_stream_name_rejected(self):
        pool = small_pool(devices=2)
        pool.engine.run_process(pool.open_stream("wal0", replicas=1))
        with pytest.raises(ClusterError, match="already open"):
            pool.engine.run_process(pool.open_stream("wal0", replicas=1))

    def test_cannot_place_on_downed_node(self):
        pool = small_pool(devices=2)
        pool.mark_down("node1")
        with pytest.raises(ClusterError, match="downed node"):
            pool.engine.run_process(
                pool.open_stream("wal0", replicas=1, on_nodes=["node1"]))

    def test_mark_down_removes_from_placement(self):
        pool = small_pool(devices=3)
        pool.mark_down("node1")
        assert pool.placement.nodes == ["node0", "node2"]
        for i in range(8):
            assert pool.placement.primary(f"wal{i}") != "node1"

    def test_streams_spread_over_the_pool(self):
        pool = small_pool(devices=4, area_pages=16)
        result = run_replicated_logging(pool, streams=8, clients_per_stream=1,
                                        records_per_client=2, replicas=1,
                                        payload_bytes=256)
        assert result.records_acked == 16
        primaries = {stream.primary.node.name
                     for stream in pool.streams.values()}
        assert len(primaries) >= 2  # the ring spreads 8 keys over 4 nodes


class TestConstruction:
    def test_rejects_odd_entry_count(self):
        with pytest.raises(ClusterError, match="must be even"):
            DevicePool(devices=1, ba_params=BaParams(max_entries=7))

    def test_rejects_misaligned_area(self):
        with pytest.raises(ClusterError, match="multiple"):
            small_pool(area_pages=3)

    def test_rejects_empty_pool(self):
        with pytest.raises(ClusterError, match="at least one device"):
            DevicePool(devices=0)

    def test_nodes_share_one_engine(self):
        pool = small_pool(devices=3)
        engines = {node.platform.engine for node in pool.nodes.values()}
        assert engines == {pool.engine}
