"""The streaming analyzer must catch what the campaigns prove absent.

A green matrix only means the *implementation* holds the durability
contract; these tests prove the *analyzer* would notice if it did not.
The payload decoder and streaming checks get direct unit tests, and the
acceptance gate at the bottom hand-injects a durability mutant — a
``ReplicatedBaWAL.commit`` that acks instantly without syncing any leg —
and requires a seeded campaign to go red with ``recovery.acked-lost``.
"""

import pytest

from repro.cluster.replicated import ReplicatedBaWAL
from repro.nemesis import CampaignSpec, fault, run_campaign
from repro.nemesis.analyzer import StreamingAnalyzer, parse_payload
from repro.obs import events
from repro.obs.events import SimEvent


# -- parse_payload -----------------------------------------------------------


def test_parse_payload_round_trip():
    payload = b"wal0:c3:r41:" + b"\0" * 20
    assert parse_payload(payload) == ("wal0", 3, 41)


@pytest.mark.parametrize("payload", [
    b"",
    b"wal0:c1:r2",                     # no padding section at all
    b"wal0:x1:r2:" + b"\0" * 4,        # client stamp malformed
    b"wal0:c1:y2:" + b"\0" * 4,        # seq stamp malformed
    b"wal0:c1:rX:" + b"\0" * 4,        # seq not an integer
    b"wal0:c1:r2:junk\0\0",            # dirty padding = torn write
    b"\xff\xfe:c1:r2:" + b"\0" * 4,    # stream name not ascii
])
def test_parse_payload_rejects_torn_and_foreign(payload):
    assert parse_payload(payload) is None


# -- streaming checks on synthetic events ------------------------------------


def _event(kind, time=1.0, **data):
    return SimEvent(time=time, kind=kind, data=tuple(sorted(data.items())))


def test_streaming_flags_ack_below_quorum():
    analyzer = StreamingAnalyzer()
    analyzer.on_event(_event("cluster.commit.acked", stream="wal0",
                             lsn=128, quorum=2, up_legs=2))
    assert analyzer.ok()
    analyzer.on_event(_event("cluster.commit.acked", stream="wal0",
                             lsn=256, quorum=2, up_legs=1))
    assert not analyzer.ok()
    assert analyzer.violations[0].invariant == "commit.below-quorum"
    assert analyzer.commits_acked == 2


def test_streaming_flags_promotion_onto_downed_node():
    analyzer = StreamingAnalyzer()
    analyzer.on_event(_event("cluster.node.crashed", victim="node1"))
    analyzer.on_event(_event("cluster.failover.promoted", stream="wal0",
                             nodes=("node2", "node3")))
    assert analyzer.ok()
    analyzer.on_event(_event("cluster.failover.promoted", stream="wal0",
                             nodes=("node1", "node2")))
    assert [v.invariant for v in analyzer.violations] == \
        ["failover.promoted-to-downed-node"]
    assert analyzer.failovers == 2


def test_streaming_ignores_unknown_event_kinds():
    analyzer = StreamingAnalyzer()
    analyzer.on_event(_event("wal.segment.recycled", half=1))
    assert analyzer.ok()


# -- the durability mutant ---------------------------------------------------

# Fabric degraded hard for the whole run, so replica appends sit in
# flight; the primary dies mid-window, taking every unapplied append
# with it.  An honest commit would have blocked on the replica ack; the
# mutant acks anyway, and the analyzer must call the loss.
_MUTANT_SPEC = CampaignSpec(
    name="mutant-instant-ack",
    seed=31337,
    duration_us=1400.0,
    drain_us=500.0,
    faults=(
        fault("degrade", 50.0, factor=40.0, duration_us=1300.0),
        fault("power_loss", 700.0, victim="primary:wal0"),
    ),
)


def _instant_ack_commit(self, lsn):
    """The mutant: claim quorum durability without syncing any leg."""
    self.stats.commits += 1
    if lsn > self._quorum_durable:
        self._quorum_durable = lsn
        if events.enabled:
            events.emit("cluster.commit.acked", self.engine.now,
                        stream=self.name, lsn=lsn, quorum=self.quorum,
                        up_legs=sum(1 for leg in self.legs()
                                    if leg.node.up))
    return None
    yield  # unreachable: keeps the mutant a process like the original


def test_analyzer_catches_instant_ack_mutant(monkeypatch):
    """ISSUE 6 acceptance: a seeded campaign catches a hand-injected
    durability mutant."""
    monkeypatch.setattr(ReplicatedBaWAL, "commit", _instant_ack_commit)
    result = run_campaign(_MUTANT_SPEC)
    assert not result["ok"]
    invariants = [v["invariant"] for v in result["analysis"]["violations"]]
    assert "recovery.acked-lost" in invariants, invariants
    assert result["recovery"]["wal0"]["missing"] > 0


def test_unmutated_twin_campaign_passes():
    """The same spec with the honest commit is green — the red verdict
    above is the mutant's doing, not the scenario's."""
    result = run_campaign(_MUTANT_SPEC)
    assert result["ok"], result["analysis"]["violations"]
    assert result["recovery"]["wal0"]["missing"] == 0
