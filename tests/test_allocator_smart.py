"""Tests for the BA-buffer allocator and SMART health reporting."""

import pytest

from repro.core import AllocationError, BaBufferAllocator
from repro.sim.units import MiB
from repro.wal import BaWAL
from tests.helpers import Platform


class TestAllocator:
    def test_slices_are_disjoint(self):
        platform = Platform(seed=98)
        allocator = BaBufferAllocator(platform.device)
        first = allocator.allocate(entries=2, nbytes=2 * MiB)
        second = allocator.allocate(entries=2, nbytes=2 * MiB)
        assert set(first.entry_ids).isdisjoint(second.entry_ids)
        assert first.buffer_base + first.nbytes <= second.buffer_base

    def test_exhaustion_detected(self):
        platform = Platform(seed=98)
        allocator = BaBufferAllocator(platform.device)
        allocator.allocate(entries=8, nbytes=4096)
        with pytest.raises(AllocationError, match="entries requested"):
            allocator.allocate(entries=1, nbytes=4096)

    def test_buffer_exhaustion_detected(self):
        platform = Platform(seed=98)
        allocator = BaBufferAllocator(platform.device)
        allocator.allocate(entries=1, nbytes=8 * MiB)
        with pytest.raises(AllocationError, match="buffer bytes"):
            allocator.allocate(entries=1, nbytes=4096)

    def test_unaligned_size_rejected(self):
        platform = Platform(seed=98)
        allocator = BaBufferAllocator(platform.device)
        with pytest.raises(AllocationError, match="multiple"):
            allocator.allocate(entries=1, nbytes=100)

    def test_wal_kwargs_build_working_wals(self):
        platform = Platform(seed=99)
        engine = platform.engine
        allocator = BaBufferAllocator(platform.device)
        wals = []
        for index in range(2):
            slice_ = allocator.allocate(entries=2, nbytes=2 * MiB)
            wal = BaWAL(engine, platform.api,
                        start_lpn=30_000 + index * 2048, area_pages=2048,
                        segment_bytes=1 * MiB, **slice_.wal_kwargs())
            engine.run_process(wal.start())
            wals.append(wal)

        def workload():
            for i in range(10):
                for wal in wals:
                    yield engine.process(wal.append_and_commit(b"x%03d" % i))

        engine.run_process(workload())
        for wal in wals:
            assert len(engine.run_process(wal.recover())) == 10

    def test_wal_kwargs_require_two_entries(self):
        platform = Platform(seed=98)
        allocator = BaBufferAllocator(platform.device)
        slice_ = allocator.allocate(entries=1, nbytes=4096)
        with pytest.raises(AllocationError, match="2-entry"):
            slice_.wal_kwargs()


class TestSmart:
    def test_smart_reports_activity(self):
        from repro.ssd import ULL_SSD
        platform = Platform(seed=100)
        device = platform.add_block_ssd(ULL_SSD)
        engine = platform.engine

        def workload():
            for i in range(50):
                yield engine.process(device.write(i, bytes(4096)))
            yield engine.process(device.drain())

        engine.run_process(workload())
        smart = device.smart()
        assert smart["media_page_programs"] >= 50
        assert smart["data_units_written"] == 50 * 8
        assert smart["percentage_used"] >= 0
        assert smart["waf"] >= 1.0
        assert smart["power_loss_protected"] is True

    def test_fresh_device_is_healthy(self):
        platform = Platform(seed=101)
        smart = platform.device.smart()
        assert smart["percentage_used"] == 0
        assert smart["read_retries"] == 0
