"""Tests for the bloom filter and its integration with the LSM read path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.lsm.bloom import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [f"key{i}" for i in range(500)]
        bloom = BloomFilter(keys)
        assert all(bloom.might_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        keys = [f"key{i}" for i in range(2000)]
        bloom = BloomFilter(keys, bits_per_key=10)
        probes = [f"absent{i}" for i in range(2000)]
        false_positives = sum(bloom.might_contain(p) for p in probes)
        assert false_positives / len(probes) < 0.03  # ~1% expected

    def test_empty_filter(self):
        bloom = BloomFilter([])
        assert not bloom.might_contain("anything")

    def test_encode_decode_roundtrip(self):
        keys = ["alpha", "beta", "gamma"]
        bloom = BloomFilter(keys)
        decoded = BloomFilter.decode(bloom.encode())
        assert all(decoded.might_contain(key) for key in keys)
        assert decoded.bits == bloom.bits
        assert decoded.hashes == bloom.hashes

    def test_decode_garbage_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter.decode(b"short")
        with pytest.raises(ValueError):
            BloomFilter.decode(bytes(20))

    def test_invalid_bits_per_key(self):
        with pytest.raises(ValueError):
            BloomFilter(["a"], bits_per_key=0)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.text(min_size=1, max_size=12), min_size=1, max_size=100))
    def test_property_membership_complete(self, keys):
        bloom = BloomFilter(keys)
        assert all(bloom.might_contain(key) for key in keys)


class TestLsmFilterIntegration:
    def test_point_misses_skip_tables(self):
        from tests.test_lsm import make_lsm
        platform, tree = make_lsm(memtable_bytes=1024)
        engine = platform.engine

        def scenario():
            for i in range(100):
                yield engine.process(tree.put(f"present{i:03d}", bytes(40)))
            for i in range(50):
                # Absent keys *inside* the tables' key range, so only the
                # bloom filter (not the range check) can skip the probe.
                yield engine.process(tree.get(f"present{i:03d}x"))

        engine.run_process(scenario())
        assert tree.flush_count > 0
        assert tree.filter_skips > 0

    def test_sstable_might_contain_consistent_with_get(self):
        from repro.db.lsm import SSTable
        table = SSTable([(f"k{i:03d}", b"v") for i in range(100)])
        for i in range(100):
            key = f"k{i:03d}"
            assert table.might_contain(key)
            assert table.get(key) == (True, b"v")
