"""Tests for the Redis-like in-memory store with AOF."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.memkv import Command, MemKV, decode_command, encode_command
from repro.ssd import DC_SSD, ULL_SSD
from repro.wal import BaWAL, BlockWAL, CommitMode
from tests.helpers import Platform, small_ba_params


def make_store(wal_kind="block", profile=ULL_SSD, mode=CommitMode.SYNCHRONOUS):
    platform = Platform(ba_params=small_ba_params(64))
    if wal_kind == "block":
        device = platform.add_block_ssd(profile)
        wal = BlockWAL(platform.engine, device, platform.cpu, mode=mode,
                       area_pages=4096)
    else:
        # The paper's Redis port avoids double buffering to preserve the
        # single-threaded design (§IV-B).
        wal = BaWAL(platform.engine, platform.api, area_pages=4096,
                    double_buffer=False)
        platform.engine.run_process(wal.start())
    return platform, MemKV(platform.engine, wal)


class TestCommandCodec:
    @given(st.sampled_from(list(Command)), st.text(min_size=1, max_size=30),
           st.binary(max_size=100))
    def test_property_roundtrip(self, command, key, value):
        assert decode_command(encode_command(command, key, value)) == (
            command, key, value,
        )

    def test_truncation_detected(self):
        with pytest.raises(ValueError):
            decode_command(b"\x01")


class TestMemKV:
    def test_set_get(self):
        platform, store = make_store()
        engine = platform.engine

        def scenario():
            yield engine.process(store.set("name", b"redis-like"))
            return (yield engine.process(store.get("name")))

        assert engine.run_process(scenario()) == b"redis-like"

    def test_delete(self):
        platform, store = make_store()
        engine = platform.engine

        def scenario():
            yield engine.process(store.set("k", b"v"))
            yield engine.process(store.delete("k"))
            return (yield engine.process(store.get("k")))

        assert engine.run_process(scenario()) is None

    def test_append_and_incr(self):
        platform, store = make_store()
        engine = platform.engine

        def scenario():
            yield engine.process(store.append("log", b"a"))
            yield engine.process(store.append("log", b"b"))
            first = yield engine.process(store.incr("counter"))
            second = yield engine.process(store.incr("counter"))
            value = yield engine.process(store.get("log"))
            return first, second, value

        assert engine.run_process(scenario()) == (1, 2, b"ab")

    def test_single_thread_serializes_commands(self):
        platform, store = make_store()
        engine = platform.engine
        finish_times = []

        def client(i):
            yield engine.process(store.set(f"key{i}", b"x"))
            finish_times.append(engine.now)

        def scenario():
            procs = [engine.process(client(i)) for i in range(4)]
            yield engine.all_of(procs)

        engine.run_process(scenario())
        # Commands cannot overlap: completion times strictly increase by
        # at least a command's full service time.
        gaps = [b - a for a, b in zip(finish_times, finish_times[1:])]
        assert all(gap > 0 for gap in gaps)

    def test_recovery_replays_aof(self):
        platform, store = make_store()
        engine = platform.engine

        def scenario():
            yield engine.process(store.set("a", b"1"))
            yield engine.process(store.set("b", b"2"))
            yield engine.process(store.delete("a"))
            yield engine.process(store.append("b", b"!"))

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = MemKV(engine, store.aof)

        def recovery():
            yield engine.process(fresh.recover())

        engine.run_process(recovery())
        assert fresh.snapshot() == {"b": b"2!"}

    def test_recovery_with_ba_wal_after_crash(self):
        platform, store = make_store(wal_kind="ba")
        engine = platform.engine

        def scenario():
            for i in range(30):
                yield engine.process(store.set(f"key{i}", b"v%d" % i))

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = MemKV(engine, store.aof)

        def recovery():
            yield engine.process(fresh.recover())

        engine.run_process(recovery())
        assert fresh.snapshot() == {f"key{i}": b"v%d" % i for i in range(30)}

    def test_ba_wal_store_is_faster_than_dc_block(self):
        """Fig. 9(c)'s mechanism: BA commit releases the single thread in
        ~1 us; a DC-SSD block commit holds it for ~20 us."""
        platform_ba, store_ba = make_store(wal_kind="ba")

        def run(store, engine):
            def scenario():
                start = engine.now
                for i in range(50):
                    yield engine.process(store.set(f"key{i}", bytes(100)))
                return engine.now - start
            return engine.run_process(scenario())

        ba_time = run(store_ba, platform_ba.engine)
        platform_dc, store_dc = make_store(wal_kind="block", profile=DC_SSD)
        dc_time = run(store_dc, platform_dc.engine)
        assert dc_time / ba_time > 2

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["set", "del", "append"]),
                              st.text(min_size=1, max_size=5),
                              st.binary(max_size=30)),
                    min_size=1, max_size=40))
    def test_property_recovery_equals_live_state(self, ops):
        platform, store = make_store()
        engine = platform.engine

        def scenario():
            for op, key, value in ops:
                if op == "set":
                    yield engine.process(store.set(key, value))
                elif op == "del":
                    yield engine.process(store.delete(key))
                else:
                    yield engine.process(store.append(key, value))

        engine.run_process(scenario())
        live = store.snapshot()
        platform.power.power_cycle()
        fresh = MemKV(engine, store.aof)
        engine.run_process(fresh.recover())
        assert fresh.snapshot() == live
