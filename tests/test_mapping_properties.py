"""Property tests for the BA-buffer mapping table (§III-A2, Table I).

Hypothesis drives random pin/unpin/flush sequences and checks the
invariants the two datapaths depend on: never more than eight entries,
never overlapping ranges (in either address space), and
``BA_GET_ENTRY_INFO`` always agreeing with the table's contents.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import EntryNotFoundError, PinConflictError
from repro.core.mapping_table import BaMappingTable
from repro.platform import Platform

PAGE = 4096
BUFFER_PAGES = 64
MAX_ENTRIES = 8


def _overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


# Operations over a deliberately crowded space: entry ids beyond the
# capacity, offsets/LBAs that frequently collide, lengths of 1-8 pages.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("pin"), st.integers(0, 11), st.integers(0, BUFFER_PAGES),
                  st.integers(0, 48), st.integers(1, 8)),
        st.tuples(st.just("unpin"), st.integers(0, 11)),
    ),
    max_size=50,
)


class TestTableProperties:
    @given(_ops)
    @settings(max_examples=200, deadline=None)
    def test_random_sequences_preserve_invariants(self, operations):
        table = BaMappingTable(BUFFER_PAGES * PAGE, MAX_ENTRIES, PAGE)
        model: dict[int, tuple[int, int, int]] = {}
        for op in operations:
            if op[0] == "pin":
                _, eid, offset_pages, lba, length_pages = op
                offset = offset_pages * PAGE
                length = length_pages * PAGE
                try:
                    table.add(eid, offset, lba, length)
                except PinConflictError:
                    pass  # rejected pins must leave the table unchanged
                else:
                    # An accepted pin implies there was room and no conflict.
                    assert len(model) < MAX_ENTRIES
                    assert eid not in model
                    model[eid] = (offset, lba, length)
            else:
                _, eid = op
                try:
                    removed = table.remove(eid)
                except EntryNotFoundError:
                    assert eid not in model
                else:
                    assert (removed.offset, removed.lba, removed.length) == model.pop(eid)

            # Invariant 1: Table I's eight-entry cap.
            assert len(table) <= MAX_ENTRIES
            # Invariant 2: table contents mirror the accepted-pin model.
            entries = table.entries()
            assert {e.entry_id: (e.offset, e.lba, e.length)
                    for e in entries} == model
            # Invariant 3: no two live entries overlap in either space.
            for i, a in enumerate(entries):
                for b in entries[i + 1:]:
                    assert not _overlap(a.buffer_range(), b.buffer_range())
                    assert not _overlap(a.lba_range(PAGE), b.lba_range(PAGE))

    @given(_ops)
    @settings(max_examples=100, deadline=None)
    def test_lookup_agrees_with_membership(self, operations):
        """``pinned_lba_overlap`` finds an entry iff one actually overlaps."""
        table = BaMappingTable(BUFFER_PAGES * PAGE, MAX_ENTRIES, PAGE)
        for op in operations:
            try:
                if op[0] == "pin":
                    _, eid, offset_pages, lba, length_pages = op
                    table.add(eid, offset_pages * PAGE, lba, length_pages * PAGE)
                else:
                    table.remove(op[1])
            except (PinConflictError, EntryNotFoundError):
                continue
        for lpn in range(0, 52):
            found = table.pinned_lba_overlap(lpn, 1)
            expected = [e for e in table.entries()
                        if _overlap(e.lba_range(PAGE), (lpn, lpn + 1))]
            if expected:
                assert found is not None and found.entry_id in {
                    e.entry_id for e in expected}
            else:
                assert found is None

    def test_snapshot_round_trip(self):
        table = BaMappingTable(BUFFER_PAGES * PAGE, MAX_ENTRIES, PAGE)
        table.add(0, 0, 0, PAGE)
        table.add(3, 2 * PAGE, 10, 2 * PAGE)
        image = table.to_snapshot()
        restored = BaMappingTable(BUFFER_PAGES * PAGE, MAX_ENTRIES, PAGE)
        restored.restore_snapshot(image)
        assert restored.to_snapshot() == image
        assert len(restored) == 2


class TestApiAgreement:
    """BA_GET_ENTRY_INFO (through the full ioctl path) vs the table."""

    @given(st.lists(st.tuples(st.integers(0, MAX_ENTRIES - 1), st.booleans()),
                    min_size=1, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_get_entry_info_always_agrees(self, actions):
        platform = Platform(seed=31)
        engine, api, device = platform.engine, platform.api, platform.device

        def drive():
            pinned: set[int] = set()
            for eid, do_pin in actions:
                if do_pin and eid not in pinned:
                    # Disjoint per-id layout so pins never conflict.
                    yield engine.process(
                        api.ba_pin(eid, eid * 2 * PAGE, eid * 2, PAGE))
                    pinned.add(eid)
                elif not do_pin and eid in pinned:
                    yield engine.process(api.ba_flush(eid))
                    pinned.discard(eid)
                # After every step the ioctl agrees with the table, entry
                # by entry, and absent ids are absent from both.
                for check_id in range(MAX_ENTRIES):
                    if check_id in pinned:
                        info = yield engine.process(
                            api.ba_get_entry_info(check_id))
                        entry = device.mapping_table.get(check_id)
                        assert info == entry
                        assert (info.offset, info.lba, info.length) == (
                            check_id * 2 * PAGE, check_id * 2, PAGE)
                    else:
                        assert check_id not in device.mapping_table
            return None

        engine.run_process(drive())

    def test_get_entry_info_unknown_id_raises(self):
        platform = Platform(seed=33)
        with pytest.raises(EntryNotFoundError):
            platform.engine.run_process(platform.api.ba_get_entry_info(5))
