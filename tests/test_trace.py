"""Tests for workload trace capture/replay."""

import random

import pytest

from repro.workloads import LinkbenchConfig, LinkbenchWorkload, YcsbConfig, YcsbWorkload
from repro.workloads.trace import (
    TraceFormatError,
    TraceReplayer,
    capture_trace,
    load_trace,
)


class TestTraceRoundtrip:
    def test_ycsb_roundtrip(self, tmp_path):
        workload = YcsbWorkload(YcsbConfig.workload_a(record_count=50),
                                random.Random(1))
        path = tmp_path / "ycsb.trace"
        capture_trace(workload.next_request, 40, path)
        replayed = load_trace(path)
        fresh = YcsbWorkload(YcsbConfig.workload_a(record_count=50),
                             random.Random(1))
        original = [fresh.next_request() for _ in range(40)]
        assert replayed == original

    def test_linkbench_roundtrip(self, tmp_path):
        workload = LinkbenchWorkload(LinkbenchConfig(node_count=30),
                                     random.Random(2))
        path = tmp_path / "lb.trace"
        capture_trace(workload.next_request, 30, path)
        replayed = load_trace(path)
        fresh = LinkbenchWorkload(LinkbenchConfig(node_count=30),
                                  random.Random(2))
        original = [fresh.next_request() for _ in range(30)]
        assert replayed == original

    def test_corrupt_trace_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"kind": "martian"}\n')
        with pytest.raises(TraceFormatError, match="line 1"):
            load_trace(path)
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_empty_lines_skipped(self, tmp_path):
        workload = YcsbWorkload(YcsbConfig.workload_a(record_count=10),
                                random.Random(3))
        path = tmp_path / "gaps.trace"
        capture_trace(workload.next_request, 3, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 3


class TestReplayer:
    def make_requests(self, count=5):
        workload = YcsbWorkload(YcsbConfig.workload_a(record_count=10),
                                random.Random(4))
        return [workload.next_request() for _ in range(count)]

    def test_replays_in_order(self):
        requests = self.make_requests()
        replayer = TraceReplayer(requests)
        assert [replayer.next_request() for _ in range(5)] == requests

    def test_exhaustion_raises(self):
        replayer = TraceReplayer(self.make_requests(2))
        replayer.next_request()
        replayer.next_request()
        with pytest.raises(TraceFormatError, match="exhausted"):
            replayer.next_request()

    def test_repeat_wraps(self):
        requests = self.make_requests(2)
        replayer = TraceReplayer(requests, repeat=True)
        drawn = [replayer.next_request() for _ in range(5)]
        assert drawn == [requests[0], requests[1], requests[0],
                         requests[1], requests[0]]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TraceReplayer([])


class TestTraceDrivenRun:
    def test_same_trace_two_configurations(self):
        """The fairness property: identical request streams against two
        log devices, compared apples-to-apples."""
        from repro.bench.drivers import run_ycsb_on_lsm
        from repro.db.lsm import LSMTree, MemoryTableStorage
        from repro.ssd import DC_SSD, ULL_SSD
        from repro.wal import BlockWAL
        from tests.helpers import Platform

        source = YcsbWorkload(YcsbConfig.workload_a(record_count=40),
                              random.Random(5))
        requests = ([r for r in source.load_requests()]
                    + [source.next_request() for _ in range(100)])
        throughputs = {}
        for profile in (DC_SSD, ULL_SSD):
            platform = Platform(seed=6)
            device = platform.add_block_ssd(profile)
            wal = BlockWAL(platform.engine, device, platform.cpu,
                           area_pages=4096)
            tree = LSMTree(platform.engine, wal,
                           MemoryTableStorage(platform.engine),
                           memtable_bytes=1 << 20)
            replayer = TraceReplayer(requests)

            class _TraceWorkload:
                next_request = staticmethod(replayer.next_request)

            result = run_ycsb_on_lsm(platform.engine, tree, _TraceWorkload(),
                                     total_ops=100 + len(requests) - 100,
                                     clients=2, load_first=False)
            throughputs[profile.name] = result.throughput
        assert throughputs["ULL-SSD"] > throughputs["DC-SSD"]
