"""Platform assembly tests and example smoke tests.

The examples are part of the public surface; each one runs end to end
(they contain their own assertions) under a suppressed stdout.
"""

import contextlib
import io
import pathlib
import sys

from repro.platform import Platform
from repro.ssd import DC_SSD, ULL_SSD

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


class TestPlatform:
    def test_assembly(self):
        platform = Platform()
        assert platform.device.profile.name == "2B-SSD"
        assert platform.api.device is platform.device
        assert platform.cpu.link is platform.link

    def test_add_block_ssds(self):
        platform = Platform()
        dc = platform.add_block_ssd(DC_SSD)
        ull = platform.add_block_ssd(ULL_SSD)
        assert dc.profile is DC_SSD
        assert ull.profile is ULL_SSD

    def test_power_controller_covers_all_devices(self):
        platform = Platform()
        platform.add_block_ssd(DC_SSD)
        report = platform.power.power_loss()
        assert set(report.device_dumps) == {"2B-SSD", "DC-SSD"}

    def test_seed_isolation(self):
        a = Platform(seed=1)
        b = Platform(seed=2)
        stream_a = a.rng.fork("x").stream("y").random()
        stream_b = b.rng.fork("x").stream("y").random()
        assert stream_a != stream_b

    def test_same_seed_reproducible(self):
        values = []
        for _ in range(2):
            platform = Platform(seed=9)
            values.append(platform.rng.fork("x").stream("y").random())
        assert values[0] == values[1]


def _run_example(name: str) -> str:
    """Import and run an example's main() with stdout captured."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        module_name = name.removesuffix(".py")
        # Force a fresh import so repeated runs stay independent.
        sys.modules.pop(module_name, None)
        module = __import__(module_name)
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            module.main()
        return buffer.getvalue()
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


class TestExamples:
    def test_quickstart(self):
        output = _run_example("quickstart.py")
        assert "quickstart OK" in output

    def test_database_logging(self):
        output = _run_example("database_logging.py")
        assert "2B-SSD (BA-WAL)" in output

    def test_power_loss_recovery(self):
        output = _run_example("power_loss_recovery.py")
        assert "power-loss recovery example OK" in output

    def test_kv_store_ycsb(self):
        output = _run_example("kv_store_ycsb.py")
        assert "kv-store example OK" in output

    def test_bulk_ingest_read(self):
        output = _run_example("bulk_ingest_read.py")
        assert "bulk-ingest example OK" in output

    def test_multi_tenant(self):
        output = _run_example("multi_tenant.py")
        assert "multi-tenant example OK" in output

    def test_sql_logging(self):
        output = _run_example("sql_logging.py")
        assert "sql-logging example OK" in output

    def test_replicated_logging(self):
        output = _run_example("replicated_logging.py")
        assert "replicated logging example OK" in output

    def test_every_example_file_is_covered(self):
        examples = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        covered = {"quickstart.py", "database_logging.py",
                   "power_loss_recovery.py", "kv_store_ycsb.py",
                   "bulk_ingest_read.py", "multi_tenant.py",
                   "sql_logging.py", "replicated_logging.py"}
        assert examples <= covered | {"__init__.py"}
