"""Tests for the ECC / read-retry reliability model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nand import (
    EccConfig,
    FlashArray,
    NandGeometry,
    NandTiming,
    UncorrectableError,
)
from repro.nand.ecc import raw_bit_errors, retries_needed
from repro.sim import Engine, RngStreams
from repro.sim.units import USEC


class TestEccMath:
    def test_clean_read_needs_no_retry(self):
        config = EccConfig(correctable_bits=40)
        assert retries_needed(config, 0) == 0
        assert retries_needed(config, 40) == 0

    def test_retries_scale_with_errors(self):
        config = EccConfig(correctable_bits=40, retry_gain_bits=12,
                           max_read_retries=3)
        assert retries_needed(config, 41) == 1
        assert retries_needed(config, 52) == 1
        assert retries_needed(config, 53) == 2
        assert retries_needed(config, 76) == 3

    def test_uncorrectable_beyond_budget(self):
        config = EccConfig(correctable_bits=40, retry_gain_bits=12,
                           max_read_retries=3)
        with pytest.raises(UncorrectableError):
            retries_needed(config, 77)

    def test_errors_grow_with_wear(self):
        config = EccConfig()
        fresh = sum(raw_bit_errors(config, ppn, 0, 1000) for ppn in range(200))
        worn = sum(raw_bit_errors(config, ppn, 1000, 1000) for ppn in range(200))
        assert worn > 3 * fresh

    def test_deterministic_per_page_and_wear(self):
        config = EccConfig()
        assert raw_bit_errors(config, 7, 50, 1000, seed=3) == \
            raw_bit_errors(config, 7, 50, 1000, seed=3)
        # Different pages or wear levels draw independently.
        draws = {raw_bit_errors(config, ppn, 50, 1000) for ppn in range(50)}
        assert len(draws) > 5

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            EccConfig(correctable_bits=0)
        with pytest.raises(ValueError):
            EccConfig(max_read_retries=-1)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 200))
    def test_property_retries_monotonic_in_errors(self, errors):
        config = EccConfig(correctable_bits=40, retry_gain_bits=12,
                           max_read_retries=8)
        try:
            first = retries_needed(config, errors)
            second = retries_needed(config, errors + 1)
            assert second >= first
        except UncorrectableError:
            with pytest.raises(UncorrectableError):
                retries_needed(config, errors + 1)


class TestReadRetryIntegration:
    def make_array(self, wear_slope=60.0, endurance=100):
        engine = Engine()
        geometry = NandGeometry(channels=1, dies_per_channel=1,
                                blocks_per_die=4, pages_per_block=4)
        timing = NandTiming("t", 10 * USEC, 20 * USEC, 30 * USEC,
                            jitter_fraction=0.0, endurance_cycles=endurance)
        ecc = EccConfig(correctable_bits=40, wear_slope=wear_slope,
                        max_read_retries=3, retry_gain_bits=12)
        return engine, FlashArray(engine, geometry, timing, RngStreams(2), ecc=ecc)

    def wear_block(self, engine, flash, cycles):
        def churn():
            for _ in range(cycles):
                yield engine.process(flash.program_page(0, b"x"))
                yield engine.process(flash.erase_block(0, 0, 0))

        engine.run_process(churn())

    def test_fresh_pages_read_in_one_sense(self):
        engine, flash = self.make_array()

        def scenario():
            yield engine.process(flash.program_page(0, b"fresh"))
            yield engine.process(flash.read_page(0))

        engine.run_process(scenario())
        assert flash.stats.read_retries == 0

    def test_worn_pages_take_retries_and_longer_reads(self):
        # Wear to 60%: expected raw errors ~38, worst case just inside the
        # retry budget (40 + 3*12 = 76), so reads retry but never fail.
        engine, flash = self.make_array(wear_slope=60.0, endurance=100)
        self.wear_block(engine, flash, 60)

        def scenario():
            yield engine.process(flash.program_page(0, b"worn"))
            reads = 0
            start = engine.now
            for _ in range(20):
                yield engine.process(flash.read_page(0))
                reads += 1
            return (engine.now - start) / reads

        mean_read = engine.run_process(scenario())
        assert flash.stats.read_retries > 0
        assert mean_read > 10 * USEC  # at least one extra tR on average

    def test_uncorrectable_page_raises(self):
        engine, flash = self.make_array(wear_slope=500.0, endurance=50)
        self.wear_block(engine, flash, 50)

        def scenario():
            yield engine.process(flash.program_page(0, b"doomed"))
            # Sweep reads until one draws an uncorrectable error count.
            for _ in range(4):
                yield engine.process(flash.read_page(0))

        with pytest.raises(UncorrectableError):
            engine.run_process(scenario())

    def test_unwritten_pages_never_fail(self):
        engine, flash = self.make_array(wear_slope=500.0, endurance=50)
        self.wear_block(engine, flash, 50)
        # Reading an erased page skips ECC entirely (nothing stored).
        assert engine.run_process(flash.read_page(1)) == bytes(4096)
