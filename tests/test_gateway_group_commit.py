"""Group-commit gateway tests: twin equality with the per-command path,
coalescing wins, crash-during-group-commit durability sweeps, degrade
under batching, and scatter-gather reply flushing."""

import pytest

from repro.cluster import ClusterCrashHarness, DevicePool, FailoverManager
from repro.core import MappingTableFullError
from repro.gateway import (
    GatewayConfig,
    GatewayError,
    GatewayLoad,
    GatewayServer,
    SimPipe,
    decode_gateway_record,
    run_serving,
)
from repro.nemesis.analyzer import StreamingAnalyzer
from repro.sim import Engine


def _pool(devices=3, seed=777):
    return DevicePool(devices=devices, seed=seed)


# -- scatter-gather reply flushing --------------------------------------------


def test_simpipe_send_accepts_frame_lists():
    """A list of frames is one send: one buffer append, one reader wake."""
    engine = Engine()
    pipe = SimPipe(engine, capacity=16)
    done = pipe.send([b"abc", b"def", b"gh"])
    assert done._processed
    assert pipe.recv(16)._value == b"abcdefgh"
    # A list that overflows the buffer parks the writer exactly once.
    parked = pipe.send([b"x" * 8, b"y" * 12])
    assert not parked._processed
    assert pipe.stalls == 1
    assert pipe.recv(32)._value == b"x" * 8 + b"y" * 8  # capacity's worth
    assert parked._processed  # space freed; the joined tail drains
    assert pipe.recv(16)._value == b"y" * 4


# -- twin equality: batch size 1 is the per-command path ----------------------


def test_batch_one_twin_matches_percommand_path_exactly():
    """Group commit with every knob pinned to 1 must be byte-identical
    to the legacy per-command path — same simulated timeline, same
    counters, same throughput."""
    legacy = run_serving(_pool(seed=321), clients=16, commands_per_client=8,
                         pipeline_depth=4, queue_depth=8,
                         writer_lanes=1, group_commit=False,
                         reply_flush_frames=1)
    twin = run_serving(_pool(seed=321), clients=16, commands_per_client=8,
                       pipeline_depth=4, queue_depth=8,
                       writer_lanes=1, group_commit=True,
                       commit_batch_commands=1, reply_flush_frames=1)
    legacy_dict = legacy.to_dict()
    twin_dict = twin.to_dict()
    group = twin_dict["server"].pop("group_commit")
    assert twin_dict == legacy_dict
    # Every barrier covered exactly one command: no coalescing happened.
    assert group["max_batch"] == 1
    assert group["barriers"] == group["commands"]


# -- coalescing wins ----------------------------------------------------------


def test_group_commit_coalesces_barriers_under_load():
    result = run_serving(_pool(seed=44), clients=48, commands_per_client=12,
                         pipeline_depth=8, queue_depth=16)
    group = result.server_stats["group_commit"]
    assert result.replies == result.commands == 48 * 12
    assert group["max_batch"] > 1  # real coalescing happened
    assert group["barriers"] < group["commands"]  # fewer barriers than writes
    assert group["commands"] > 0


def test_group_commit_beats_percommand_wall_clock():
    """Same fleet, same commands: the coalesced path finishes the run in
    less simulated time than the per-command ablation."""
    grouped = run_serving(_pool(seed=57), clients=32, commands_per_client=12,
                          pipeline_depth=8, queue_depth=16)
    percmd = run_serving(_pool(seed=57), clients=32, commands_per_client=12,
                         pipeline_depth=8, queue_depth=16,
                         writer_lanes=1, group_commit=False,
                         reply_flush_frames=1)
    assert grouped.replies == percmd.replies
    assert grouped.sim_seconds < percmd.sim_seconds


def test_group_commit_is_deterministic():
    first = run_serving(_pool(seed=909), clients=24, commands_per_client=10)
    second = run_serving(_pool(seed=909), clients=24, commands_per_client=10)
    assert first.to_dict() == second.to_dict()


def test_batch_caps_are_validated():
    pool = _pool(devices=2)
    with pytest.raises(GatewayError):
        GatewayServer(pool, GatewayConfig(commit_batch_commands=0))
    with pytest.raises(GatewayError):
        GatewayServer(pool, GatewayConfig(writer_lanes=0))
    with pytest.raises(GatewayError):
        GatewayServer(pool, GatewayConfig(reply_flush_frames=0))
    with pytest.raises(GatewayError):
        GatewayServer(pool, GatewayConfig(commit_batch_bytes=0))


# -- crash during group commit ------------------------------------------------


def _crash_sweep_point(crash_at: float) -> None:
    """Crash a shard primary at ``crash_at`` while coalesced windows are
    in flight, fail over, recover, finish the load — then prove via the
    analyzer's recovery re-read that no batched ack over-promised: every
    acked command is present, untorn, and gapless on the surviving legs."""
    pool = _pool(devices=3, seed=2024)
    engine = pool.engine
    server = GatewayServer(pool, GatewayConfig(
        shards=2, replicas=2, pipeline_depth=8, queue_depth=8))
    engine.run_process(server.start())
    load = GatewayLoad(server, value_bytes=96, payload_stamps=True)
    clients, commands = 8, 20
    for client_id in range(clients):
        engine.process(load.client(client_id, commands))
    engine.run(until=engine.timeout(crash_at))  # mid-window: acks in flight
    acked_before = sum(len(entries) for entries in load.acked.values())
    assert acked_before < clients * commands
    victim = server.shards[0].stream.primary.node.name
    harness = ClusterCrashHarness(pool)
    manager = FailoverManager(pool)
    harness.crash_node_now(victim)
    for shard in server.shards:
        stream = pool.streams[shard.stream_name]
        if any(not leg.node.up for leg in stream.legs()):
            engine.run_process(manager.fail_over(shard.stream_name))
    assert server.recover() == 2
    sessions = [
        engine.process(load.client(client_id, commands,
                                   start_seq=load.resume_seq(client_id)))
        for client_id in range(clients)
    ]
    engine.run(until=engine.all_of(sessions))
    engine.run()
    analyzer = StreamingAnalyzer()
    summary = analyzer.check_recovery(pool, load.acked,
                                      decode=decode_gateway_record)
    assert analyzer.ok(), [v.to_dict() for v in analyzer.violations]
    checked = [entry for entry in summary.values() if entry["checked"]]
    assert checked and all(entry["missing"] == 0 for entry in checked)
    assert sum(entry["acked"] for entry in checked) >= acked_before


@pytest.mark.parametrize("crash_at", [6e-5, 1e-4, 1.8e-4, 2.8e-4])
def test_power_loss_during_group_commit_never_overpromises(crash_at):
    """The sweep lands the crash at different points of the coalescer's
    window lifecycle: while a batch is being carved, while the covering
    quorum barrier is in flight, and between the barrier and the client
    acks.  In every case a batched ack must mean quorum-durable."""
    _crash_sweep_point(crash_at)


# -- degradation while batches are in flight ----------------------------------


def test_mapping_pressure_degrades_while_coalescing():
    """``MappingTableFullError`` out of a batched append: the shard
    quiesces its lanes and the coalescer, replays onto block legs, and
    the interrupted batch retries — no command lost, no double ack."""
    pool = _pool(devices=2, seed=83)
    engine = pool.engine
    server = GatewayServer(pool, GatewayConfig(
        shards=1, replicas=2, pipeline_depth=8, queue_depth=8))
    engine.run_process(server.start())
    shard = server.shards[0]
    for index in range(3):  # exhaust the remaining byte-path budget
        engine.run_process(pool.open_stream(f"filler-{index}", replicas=2))
    real_append = shard.stream.append
    real_append_batch = shard.stream.append_batch
    state = {"armed": False, "seen": 0}

    def flaky_append(payload):
        if state["armed"]:
            state["armed"] = False
            raise MappingTableFullError("mapping table exhausted")
        return real_append(payload)

    def flaky_append_batch(payloads):
        state["seen"] += 1
        if state["seen"] == 3 and len(payloads) > 1:
            raise MappingTableFullError("mapping table exhausted")
        return real_append_batch(payloads)

    shard.stream.append = flaky_append
    shard.stream.append_batch = flaky_append_batch
    load = GatewayLoad(server, value_bytes=48)
    sessions = [engine.process(load.client(client_id, 12))
                for client_id in range(8)]
    engine.run(until=engine.all_of(sessions))
    engine.run()
    assert server.degrades == 1
    assert load.replies == load.commands
    stats = server.stats()
    assert any(kind == "block" for kind in stats["shard_kinds"][0])
    records = engine.run_process(server.shards[0].stream.recover())
    assert records  # pre-degrade writes survived the replay swap
