"""Kernel fast-path semantics: the deferred-continuation queue.

The optimized kernel resumes waiters of already-processed events (granted
resource requests, buffered store gets, completed processes) through a
deferred-callback queue instead of a heap round-trip.  Deferred entries
take sequence numbers from the same counter as heap events and are merged
by ``(time, sequence)``, so execution order must be exactly what the
heap-only kernel produced.  These tests pin that contract.
"""

import pytest

from repro.sim import Engine, Resource, Store
from repro.sim.engine import SimulationError


def test_already_processed_event_resumes_in_sequence_order():
    """A waiter on a pre-processed event resumes before later-scheduled
    work at the same instant — the position a heap trip would give it."""
    engine = Engine()
    store = Store(engine)
    store.put("x")
    log = []

    def fast():
        yield store.get()  # already-processed event: deferred resume
        log.append("fast")

    def slow():
        yield engine.timeout(0.0)  # heap event at the same (time 0) instant
        log.append("slow")

    engine.process(fast())
    engine.process(slow())
    engine.run()
    assert log == ["fast", "slow"]


def test_yielding_an_already_completed_process_returns_its_value():
    engine = Engine()

    def child():
        return 7
        yield  # pragma: no cover - makes this a generator

    def parent():
        proc = engine.process(child())
        yield engine.timeout(1.0)  # child completed long ago
        value = yield proc
        return value

    assert engine.run_process(parent()) == 7


def test_failed_already_processed_process_raises_in_waiter():
    engine = Engine()

    class Boom(Exception):
        pass

    def child():
        yield engine.timeout(0.1)
        raise Boom()

    def parent():
        proc = engine.process(child())
        yield engine.timeout(1.0)
        try:
            yield proc
        except Boom:
            return "caught"
        return "missed"

    assert engine.run_process(parent()) == "caught"


def test_process_completion_value_propagates_through_fast_path():
    engine = Engine()

    def child():
        yield engine.timeout(0.1)
        return 42

    def parent():
        value = yield engine.process(child())
        return value * 2

    assert engine.run_process(parent()) == 84


def test_timeouts_at_equal_deadline_fire_in_creation_order():
    engine = Engine()
    log = []

    def sleeper(tag, delay):
        yield engine.timeout(delay)
        log.append(tag)

    engine.process(sleeper("late", 2.0))
    engine.process(sleeper("a", 1.0))
    engine.process(sleeper("b", 1.0))
    engine.run()
    assert log == ["a", "b", "late"]


def test_deadlock_detection_survives_the_deferred_queue():
    engine = Engine()
    with pytest.raises(SimulationError, match="deadlock"):
        engine.run(until=engine.event())


# -- Resource fast paths -----------------------------------------------------


def test_uncontended_request_is_granted_without_scheduling():
    engine = Engine()
    resource = Resource(engine, capacity=2)
    req = resource.request()
    assert req.triggered and req.processed
    assert not engine._queue and not engine._deferred
    assert resource.in_use == 1


def test_contended_requests_are_granted_fifo_at_release_time():
    engine = Engine()
    resource = Resource(engine)
    log = []

    def holder():
        req = resource.request()
        yield req
        yield engine.timeout(1.0)
        resource.release(req)

    def waiter(tag):
        req = resource.request()
        yield req
        log.append((tag, engine.now))
        resource.release(req)

    engine.process(holder())
    for tag in range(3):
        engine.process(waiter(tag))
    engine.run()
    assert [tag for tag, _ in log] == [0, 1, 2]
    assert all(now == 1.0 for _, now in log)


def test_release_of_never_granted_request_cancels_it():
    engine = Engine()
    resource = Resource(engine)
    held = resource.request()
    queued = resource.request()
    assert not queued.triggered
    resource.release(queued)  # cancel, not a slot release
    assert resource.queue_length == 0
    assert resource.in_use == 1
    resource.release(held)
    assert resource.in_use == 0


# -- Store fast paths --------------------------------------------------------


def test_store_get_on_buffered_item_completes_synchronously():
    engine = Engine()
    store = Store(engine)
    store.put(1)
    store.put(2)
    first, second = store.get(), store.get()
    assert first.processed and first.value == 1
    assert second.processed and second.value == 2
    assert not engine._queue and not engine._deferred


def test_store_wakes_blocked_getters_fifo():
    engine = Engine()
    store = Store(engine)
    log = []

    def getter(tag):
        item = yield store.get()
        log.append((tag, item, engine.now))

    def putter():
        yield engine.timeout(0.5)
        store.put("x")
        store.put("y")

    engine.process(getter("a"))
    engine.process(getter("b"))
    engine.process(putter())
    engine.run()
    assert log == [("a", "x", 0.5), ("b", "y", 0.5)]
