"""Platform snapshot/restore: warm-state forking must be undetectable.

The run-matrix executor reuses a platform's post-warm-up state across
sweep legs, so the whole feature rests on one claim: a leg run on a
restored platform is *byte-identical* (full ``collect_stats`` report,
canonical JSON) to the same leg run on the original warmed platform.
These tests pin that down, including across a pickle round trip — the
form the snapshot takes in the cross-process cache.
"""

import pickle

import pytest

from repro.bench.golden import canonical_json
from repro.observability import collect_stats
from repro.platform import Platform

PAGE = 4096


def _warm(platform: Platform) -> None:
    """A warm-up phase touching block cache, FTL, NAND, and the BA path."""
    engine, api, device = platform.engine, platform.api, platform.device

    def drive():
        for lpn in range(0, 256, 8):
            yield engine.process(device.write(lpn, bytes([lpn & 0xFF]) * (8 * PAGE)))
        yield engine.process(device.drain())
        entry = yield engine.process(api.ba_pin(0, 0, 0, 16 * PAGE))
        yield engine.process(api.mmio_write(entry, 0, b"\xab" * 512))
        yield engine.process(api.ba_sync(0))
        yield engine.process(api.ba_flush(0))
        yield engine.process(device.drain())
        return None

    engine.run(until=engine.process(drive(), name="warm"))
    engine.run()


def _leg(platform: Platform) -> dict:
    """A measurement leg: more writes (GC pressure), BA traffic, reads."""
    engine, api, device = platform.engine, platform.api, platform.device

    def drive():
        for lpn in range(0, 256, 4):
            yield engine.process(device.write(lpn, bytes([(lpn + 1) & 0xFF]) * (4 * PAGE)))
        yield engine.process(device.drain())
        for eid, (lba, npages) in enumerate([(300, 8), (512, 32)], start=1):
            entry = yield engine.process(api.ba_pin(eid, 0, lba, npages * PAGE))
            yield engine.process(api.mmio_write(entry, 0, bytes(256)))
            yield engine.process(api.ba_sync(eid))
            yield engine.process(api.ba_flush(eid))
        yield engine.process(device.drain())
        for lpn in range(0, 256, 32):
            yield engine.process(device.read(lpn, 4 * PAGE))
        return None

    engine.run(until=engine.process(drive(), name="leg"))
    engine.run()
    return collect_stats(platform)


def test_restored_leg_is_byte_identical_to_continued_leg():
    warmed = Platform(seed=909)
    _warm(warmed)
    snap = warmed.snapshot()
    # The snapshot must survive the exact transport the cache uses.
    blob = pickle.dumps(snap)

    continued = canonical_json(_leg(warmed))

    fresh = Platform(seed=909)
    fresh.restore(pickle.loads(blob))
    restored = canonical_json(_leg(fresh))

    assert restored == continued


def test_snapshot_then_restore_twice_forks_identically():
    warmed = Platform(seed=77)
    _warm(warmed)
    snap = warmed.snapshot()

    runs = []
    for _ in range(2):
        fresh = Platform(seed=77)
        fresh.restore(pickle.loads(pickle.dumps(snap)))
        runs.append(canonical_json(_leg(fresh)))
    assert runs[0] == runs[1]


def test_snapshot_requires_quiescence():
    platform = Platform(seed=1)
    engine, device = platform.engine, platform.device

    def drive():
        yield engine.process(device.write(0, bytes(PAGE)))
        return None

    engine.process(drive(), name="busy")
    # Engine never ran: bootstraps are still deferred -> not quiescent.
    with pytest.raises(RuntimeError, match="quiescent"):
        platform.snapshot()


def test_restore_rejects_mismatched_configuration():
    warmed = Platform(seed=5)
    _warm(warmed)
    snap = warmed.snapshot()
    other = Platform(seed=6)
    with pytest.raises(RuntimeError, match="fingerprint"):
        other.restore(snap)


def test_restore_rejects_used_platform():
    warmed = Platform(seed=11)
    _warm(warmed)
    snap = warmed.snapshot()
    used = Platform(seed=11)
    _warm(used)
    with pytest.raises(RuntimeError, match="freshly constructed"):
        used.restore(snap)
