"""Tests for the mmap'ed BA-buffer view."""

import pytest

from repro.core import MmapView
from repro.core.mmap_view import DEFAULT_VIRTUAL_BASE
from repro.pcie.bar import BarAccessError
from tests.helpers import Platform

PAGE = 4096


def make_view(pages=2, virtual_base=DEFAULT_VIRTUAL_BASE):
    platform = Platform(seed=87)
    engine, api = platform.engine, platform.api

    def setup():
        return (yield engine.process(api.ba_pin(0, 0, 500, pages * PAGE)))

    entry = engine.run_process(setup())
    return platform, MmapView(api, entry, virtual_base=virtual_base)


class TestMmapView:
    def test_store_load_roundtrip(self):
        platform, view = make_view()
        engine = platform.engine
        base = view.virtual_base

        def scenario():
            yield engine.process(view.store(base + 100, b"through the mapping"))
            return (yield engine.process(view.load(base + 100, 19)))

        assert engine.run_process(scenario()) == b"through the mapping"

    def test_msync_makes_stores_durable(self):
        platform, view = make_view()
        engine = platform.engine
        base = view.virtual_base

        def scenario():
            yield engine.process(view.store(base, b"durable via msync"))
            yield engine.process(view.msync())

        engine.run_process(scenario())
        platform.power.power_cycle()
        assert platform.device.ba_dram.read(0, 17) == b"durable via msync"

    def test_out_of_mapping_access_rejected(self):
        platform, view = make_view(pages=1)
        engine = platform.engine
        base = view.virtual_base
        with pytest.raises(BarAccessError):
            engine.run_process(view.store(base - 8, b"below"))
        with pytest.raises(BarAccessError):
            engine.run_process(view.store(base + PAGE - 2, b"straddles end"))

    def test_custom_virtual_base(self):
        platform, view = make_view(virtual_base=0x1000_0000)
        engine = platform.engine

        def scenario():
            yield engine.process(view.store(0x1000_0000 + 8, b"custom"))
            return (yield engine.process(view.load(0x1000_0000 + 8, 6)))

        assert engine.run_process(scenario()) == b"custom"

    def test_translation_lands_in_entry_slice(self):
        """The view writes through BAR1+ATU into exactly the pinned slice
        of the BA-buffer, not offset 0."""
        platform = Platform(seed=88)
        engine, api = platform.engine, platform.api

        def setup():
            yield engine.process(api.ba_pin(0, 0, 100, PAGE))       # slice 0
            entry = yield engine.process(api.ba_pin(1, PAGE, 200, PAGE))
            return entry

        entry = engine.run_process(setup())
        view = MmapView(api, entry)

        def scenario():
            yield engine.process(view.store(view.virtual_base, b"slice-1"))
            yield engine.process(view.msync())

        engine.run_process(scenario())
        assert platform.device.ba_dram.read(PAGE, 7) == b"slice-1"
        assert platform.device.ba_dram.read(0, 7) == bytes(7)
