"""reprolint: per-rule detection, pragma suppression, and a clean tree.

The fixture files under ``tests/fixtures/lint/`` carry one known
violation per rule; these tests assert each is found (with a usable
location) and that idiomatic simulation code stays clean.
"""

import pathlib

import pytest

from repro.analysis import lint

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"
SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"


def rules_in(path):
    return {violation.rule for violation in lint.lint_paths([path])}


class TestRuleTable:
    def test_at_least_twelve_rules_implemented(self):
        assert len(lint.RULES) >= 12

    def test_rule_classes_cover_det_sim_obs(self):
        prefixes = {rule_id[:3] for rule_id in lint.RULES}
        assert prefixes == {"DET", "SIM", "OBS"}

    def test_every_rule_fires_on_the_fixture_tree(self):
        fired = rules_in(FIXTURES)
        assert fired == set(lint.RULES), (
            f"rules never exercised by fixtures: {set(lint.RULES) - fired}"
        )


class TestDetRules:
    def test_det_rules_on_fixture(self):
        assert rules_in(FIXTURES / "bad_det.py") == {
            "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
        }

    @pytest.mark.parametrize("snippet,rule", [
        ("import time\nt = time.time()\n", "DET001"),
        ("import time\nt = time.monotonic_ns()\n", "DET001"),
        ("from time import perf_counter\nt = perf_counter()\n", "DET001"),
        ("from datetime import datetime\nd = datetime.now()\n", "DET001"),
        ("import random\nx = random.randint(0, 9)\n", "DET002"),
        ("import random\nrandom.shuffle(items)\n", "DET002"),
        ("import uuid\nu = uuid.uuid4()\n", "DET003"),
        ("import secrets\ns = secrets.token_bytes(8)\n", "DET003"),
        ("b = hash('key')\n", "DET005"),
        ("order = sorted(events, key=id)\n", "DET006"),
        ("order = sorted(events, key=lambda e: id(e))\n", "DET006"),
        ("first = id(a) < id(b)\n", "DET006"),
    ])
    def test_snippet_flagged(self, snippet, rule):
        rules = {v.rule for v in lint.lint_source(snippet)}
        assert rule in rules

    @pytest.mark.parametrize("snippet", [
        # Seeded RNG construction is the sanctioned idiom.
        "import random\nrng = random.Random(42)\n",
        # Sorted iteration over a set is fine.
        "def f(engine, dies):\n"
        "    for die in sorted({1, 2}):\n"
        "        yield engine.timeout(die)\n",
        # Set iteration with no scheduling in the body is fine.
        "total = 0\nfor x in {1, 2, 3}:\n    total += x\n",
    ])
    def test_clean_idioms_not_flagged(self, snippet):
        assert lint.lint_source(snippet) == []


class TestSimRules:
    def test_sim_rules_on_fixture(self):
        assert rules_in(FIXTURES / "bad_sim.py") == {
            "SIM101", "SIM102", "SIM103", "SIM104", "SIM105",
        }

    def test_discarded_timeout_flagged_but_yielded_is_not(self):
        bad = "def p(engine):\n    engine.timeout(1)\n    yield\n"
        good = "def p(engine):\n    yield engine.timeout(1)\n"
        assert {v.rule for v in lint.lint_source(bad)} == {"SIM101"}
        assert lint.lint_source(good) == []

    def test_now_equality_flagged_but_ordering_is_not(self):
        bad = "done = engine.now == 5.0\n"
        good = "done = engine.now >= 5.0\n"
        assert {v.rule for v in lint.lint_source(bad)} == {"SIM104"}
        assert lint.lint_source(good) == []

    def test_yield_in_finally_flagged_only_for_generators(self):
        bad = (
            "def p(engine):\n"
            "    try:\n"
            "        yield engine.timeout(1)\n"
            "    finally:\n"
            "        yield engine.timeout(2)\n"
        )
        assert {v.rule for v in lint.lint_source(bad)} == {"SIM105"}
        # A plain function's finally has no GeneratorExit hazard.
        plain = (
            "def f(res, req):\n"
            "    try:\n"
            "        res.use(req)\n"
            "    finally:\n"
            "        res.release(req)\n"
        )
        assert lint.lint_source(plain) == []

    def test_yield_in_try_body_or_nested_def_is_clean(self):
        try_body = (
            "def p(engine, res, req):\n"
            "    try:\n"
            "        yield engine.timeout(1)\n"
            "    finally:\n"
            "        res.release(req)\n"
        )
        assert lint.lint_source(try_body) == []
        # A nested generator inside the finally is its own scope.
        nested = (
            "def p(engine):\n"
            "    try:\n"
            "        yield engine.timeout(1)\n"
            "    finally:\n"
            "        def inner(e):\n"
            "            yield e.timeout(2)\n"
            "        register(inner)\n"
        )
        assert lint.lint_source(nested) == []


class TestObsRules:
    def test_obs_rules_on_fixture(self):
        assert rules_in(FIXTURES / "core" / "api.py") == {
            "OBS101", "OBS102", "OBS103", "OBS104",
        }

    def test_obs101_only_applies_to_core_api_paths(self):
        source = "def ba_pin(self):\n    yield\n"
        assert lint.lint_source(source, path="core/api.py") != []
        assert lint.lint_source(source, path="other/module.py") == []

    def test_guarded_observe_is_clean(self):
        source = (
            "from repro.obs import tracing\n"
            "def f(engine):\n"
            "    if tracing.enabled:\n"
            "        tracing.observe('core.api.ba_sync', engine.now)\n"
        )
        assert lint.lint_source(source) == []

    def test_obs104_namespace_registry(self):
        bad = (
            "from repro.obs import tracing\n"
            "def f(engine):\n"
            "    if tracing.enabled:\n"
            "        tracing.count('custer.appends')\n"  # typo'd layer
        )
        assert {v.rule for v in lint.lint_source(bad)} == {"OBS104"}
        good = bad.replace("custer.", "cluster.")
        assert lint.lint_source(good) == []

    def test_obs104_not_doubled_onto_malformed_names(self):
        # A name that already fails OBS103 should not also fire OBS104.
        source = (
            "from repro.obs import tracing\n"
            "def f(engine):\n"
            "    if tracing.enabled:\n"
            "        tracing.observe('BA SYNC', 1.0)\n"
        )
        assert {v.rule for v in lint.lint_source(source)} == {"OBS103"}


class TestSuppression:
    def test_line_pragma_suppresses_named_rule(self):
        source = "import time\nt = time.time()  # reprolint: disable=DET001\n"
        assert lint.lint_source(source) == []

    def test_line_pragma_all(self):
        source = "import time\ntime.sleep(1)  # reprolint: disable=all\n"
        assert lint.lint_source(source) == []

    def test_pragma_does_not_leak_to_other_lines(self):
        source = (
            "import time\n"
            "a = time.time()  # reprolint: disable=DET001\n"
            "b = time.time()\n"
        )
        violations = lint.lint_source(source)
        assert [v.line for v in violations] == [3]

    def test_per_path_ignores(self):
        config = lint.LintConfig(per_path_ignores=(
            ("*/special.py", frozenset({"DET001"})),
        ))
        source = "import time\nt = time.time()\n"
        assert lint.lint_source(source, path="pkg/special.py", config=config) == []
        assert lint.lint_source(source, path="pkg/other.py", config=config) != []


class TestCliContract:
    def test_diagnostics_carry_precise_locations(self):
        violations = lint.lint_paths([FIXTURES / "bad_sim.py"])
        for violation in violations:
            assert violation.path.endswith("bad_sim.py")
            assert violation.line > 0 and violation.col > 0
            text = violation.format()
            assert f":{violation.line}:{violation.col}: {violation.rule}" in text

    def test_main_exit_codes(self, capsys):
        assert lint.main([str(FIXTURES / "clean.py")]) == 0
        assert lint.main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "bad_det.py" in out and "DET001" in out

    def test_select_limits_rules(self):
        config = lint.LintConfig(select=frozenset({"SIM102"}))
        violations = lint.lint_paths([FIXTURES / "bad_sim.py"], config)
        assert {v.rule for v in violations} == {"SIM102"}

    def test_syntax_error_reported_not_raised(self):
        violations = lint.lint_source("def broken(:\n", path="x.py")
        assert [v.rule for v in violations] == ["E999"]


class TestRealTreeIsClean:
    def test_src_repro_lints_clean(self):
        violations = lint.lint_paths([SRC])
        assert violations == [], "\n".join(v.format() for v in violations)
