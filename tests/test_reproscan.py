"""reproscan: seeded mutants, clean tree, baseline gate, cache, outputs.

The fixture files under ``tests/fixtures/scan/`` are seeded mutants —
each carries exactly one contract violation that exactly one rule must
catch — plus one clean file exercising every correct pattern the
analyzer must *not* flag.  The real ``src/repro`` tree must prove clean
with an empty baseline.
"""

import json
import pathlib

import pytest

from repro.analysis.scan import checks, cli, report
from repro.analysis.scan.cli import scan_paths

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "scan"
SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

#: fixture file -> the single rule its seeded mutation must trip.
MUTANTS = {
    "mut_synced_before_sync.py": "DUR001",
    "mut_ack_before_quorum.py": "DUR001",
    "mut_coalesced_ack_before_barrier.py": "DUR001",
    "mut_drop_fsync_manifest.py": "DUR002",
    "mut_extents_before_fsync.py": "DUR002",
    "mut_bare_yield.py": "GEN001",
    "mut_wallclock_sleep.py": "GEN002",
    "mut_yield_in_finally.py": "GEN003",
    "mut_unguarded_die_dict.py": "LOCK001",
    "mut_release_then_yield_mutate.py": "LOCK001",
}


def rules_in(path):
    return {finding.rule for finding in scan_paths([path])}


class TestMutants:
    @pytest.mark.parametrize("fixture,rule", sorted(MUTANTS.items()))
    def test_mutant_caught_by_exactly_the_intended_rule(self, fixture, rule):
        findings = scan_paths([FIXTURES / fixture])
        assert {f.rule for f in findings} == {rule}, (
            f"{fixture}: " + "; ".join(f.format() for f in findings)
        )

    @pytest.mark.parametrize("fixture", sorted(MUTANTS))
    def test_mutant_diagnostics_carry_precise_locations(self, fixture):
        for finding in scan_paths([FIXTURES / fixture]):
            assert finding.path.endswith(fixture)
            assert finding.line > 0 and finding.col > 0
            assert finding.function  # qualified name, never empty
            text = finding.format()
            assert f":{finding.line}:{finding.col}: {finding.rule}" in text

    def test_clean_fixture_has_zero_findings(self):
        findings = scan_paths([FIXTURES / "clean_commit.py"])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_mutants_jointly_exercise_every_rule(self):
        assert set(MUTANTS.values()) == set(checks.RULES), (
            "rules with no seeded mutant: "
            f"{set(checks.RULES) - set(MUTANTS.values())}"
        )

    def test_at_least_eight_seeded_mutants(self):
        assert len(MUTANTS) >= 8
        present = {p.name for p in FIXTURES.glob("mut_*.py")}
        assert present == set(MUTANTS)


class TestRealTreeIsClean:
    def test_src_repro_scans_clean(self):
        findings = scan_paths([SRC])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_checked_in_baseline_is_loadable_and_empty(self):
        baseline = report.load_baseline(
            pathlib.Path(__file__).parent.parent / "scan-baseline.json")
        assert baseline == {}


class TestFingerprints:
    def test_fingerprint_is_line_independent(self):
        a = report.Finding("DUR001", "p.py", 10, 5, "M.commit",
                           "watermark:_synced", "msg")
        b = report.Finding("DUR001", "p.py", 99, 1, "M.commit",
                           "watermark:_synced", "msg")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_rule_path_function_key(self):
        base = report.Finding("DUR001", "p.py", 1, 1, "M.commit", "k", "msg")
        variants = [
            report.Finding("DUR002", "p.py", 1, 1, "M.commit", "k", "msg"),
            report.Finding("DUR001", "q.py", 1, 1, "M.commit", "k", "msg"),
            report.Finding("DUR001", "p.py", 1, 1, "M.other", "k", "msg"),
            report.Finding("DUR001", "p.py", 1, 1, "M.commit", "k2", "msg"),
        ]
        fingerprints = {base.fingerprint()} | {v.fingerprint()
                                               for v in variants}
        assert len(fingerprints) == 5


class TestBaseline:
    def test_placeholder_justification_rejected(self, tmp_path):
        findings = scan_paths([FIXTURES / "mut_bare_yield.py"])
        baseline_path = tmp_path / "baseline.json"
        report.write_baseline(findings, baseline_path)
        with pytest.raises(report.BaselineError):
            report.load_baseline(baseline_path)

    def test_real_justification_suppresses(self, tmp_path, capsys):
        fixture = str(FIXTURES / "mut_bare_yield.py")
        findings = scan_paths([fixture])
        baseline_path = tmp_path / "baseline.json"
        report.write_baseline(findings, baseline_path)
        payload = json.loads(baseline_path.read_text())
        for entry in payload["suppressions"]:
            entry["justification"] = "intentional mutant fixture for tests"
        baseline_path.write_text(json.dumps(payload))
        code = cli.main([fixture, "--baseline", str(baseline_path),
                         "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 suppressed" in out

    def test_stale_suppression_fails_the_gate(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({"version": 1, "suppressions": [{
            "fingerprint": "deadbeefdeadbeef",
            "rule": "DUR001",
            "location": "gone.py:Gone.commit",
            "justification": "the code this excused was deleted",
        }]}))
        code = cli.main([str(FIXTURES / "clean_commit.py"),
                         "--baseline", str(baseline_path), "--no-cache"])
        out = capsys.readouterr().out
        assert code == 1
        assert "stale suppression deadbeefdeadbeef" in out

    def test_malformed_baseline_is_config_error(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text("{not json")
        code = cli.main([str(FIXTURES / "clean_commit.py"),
                         "--baseline", str(baseline_path), "--no-cache"])
        assert code == 2

    def test_write_baseline_then_gate_roundtrip(self, tmp_path, capsys):
        fixture = str(FIXTURES / "mut_extents_before_fsync.py")
        baseline_path = tmp_path / "baseline.json"
        assert cli.main([fixture, "--baseline", str(baseline_path),
                         "--write-baseline", "--no-cache"]) == 0
        capsys.readouterr()
        # Placeholder justifications must not pass the gate as written.
        assert cli.main([fixture, "--baseline", str(baseline_path),
                         "--no-cache"]) == 2


class TestCache:
    def test_cache_hit_returns_identical_findings(self, tmp_path, capsys):
        fixture = str(FIXTURES / "mut_bare_yield.py")
        args = [fixture, "--cache-dir", str(tmp_path),
                "--baseline", str(tmp_path / "none.json"), "--format", "json"]
        assert cli.main(args) == 1
        first = json.loads(capsys.readouterr().out)
        assert cli.main(args) == 1
        second = json.loads(capsys.readouterr().out)
        assert first == second
        cached = json.loads((tmp_path / "results.json").read_text())
        assert len(cached["findings"]) == 1

    def test_cache_invalidated_by_content_change(self, tmp_path, capsys):
        source = (FIXTURES / "mut_bare_yield.py").read_text()
        target = tmp_path / "prog.py"
        target.write_text(source)
        args = [str(target), "--cache-dir", str(tmp_path / "cache"),
                "--baseline", str(tmp_path / "none.json")]
        assert cli.main(args) == 1
        assert "cache miss" in capsys.readouterr().out
        assert cli.main(args) == 1
        assert "cache hit" in capsys.readouterr().out
        target.write_text(source.replace("yield  # BUG", "pass  # fixed"))
        assert cli.main(args) == 0
        assert "cache miss" in capsys.readouterr().out

    def test_digest_covers_analyzer_version_and_select(self, tmp_path):
        files = [(tmp_path / "a.py", "x = 1\n")]
        assert report.tree_digest(files) != report.tree_digest(
            files, extra="DUR001")
        assert report.tree_digest(files) != report.tree_digest(
            [(tmp_path / "a.py", "x = 2\n")])


class TestOutputs:
    def test_json_output_parses_and_carries_fingerprints(self, capsys):
        code = cli.main([str(FIXTURES / "mut_yield_in_finally.py"),
                         "--format", "json", "--no-cache",
                         "--baseline", "/nonexistent-baseline.json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert [entry["rule"] for entry in payload] == ["GEN003"]
        assert all(len(entry["fingerprint"]) == 16 for entry in payload)

    def test_sarif_output_is_well_formed(self, capsys):
        code = cli.main([str(FIXTURES / "mut_unguarded_die_dict.py"),
                         "--format", "sarif", "--no-cache",
                         "--baseline", "/nonexistent-baseline.json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "reproscan"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(checks.RULES)
        result = run["results"][0]
        assert result["ruleId"] == "LOCK001"
        assert "reproscan/v1" in result["partialFingerprints"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] > 0


class TestCliContract:
    def test_repro_cli_delegates_scan(self, capsys):
        from repro import cli as repro_cli
        assert repro_cli.main(["scan", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DUR001" in out and "LOCK001" in out

    def test_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in checks.RULES:
            assert rule_id in out

    def test_unknown_select_is_config_error(self, capsys):
        assert cli.main([str(FIXTURES), "--select", "NOPE999",
                         "--no-cache"]) == 2

    def test_select_limits_rules(self, capsys):
        code = cli.main([str(FIXTURES), "--select", "GEN003", "--no-cache",
                         "--baseline", "/nonexistent-baseline.json"])
        out = capsys.readouterr().out
        assert code == 1
        assert "GEN003" in out
        assert "DUR001" not in out and "LOCK001" not in out

    def test_no_files_is_config_error(self, tmp_path, capsys):
        assert cli.main([str(tmp_path), "--no-cache"]) == 2

    def test_syntax_error_reported_not_raised(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        code = cli.main([str(broken), "--no-cache",
                         "--baseline", "/nonexistent-baseline.json"])
        err = capsys.readouterr().err
        assert code == 0  # unparsable files produce E999 notes, not findings
        assert "E999" in err
