"""Histogram merge algebra and cross-process tracer absorption.

The run-matrix executor merges per-leg tracer payloads back into one
tracer, so the whole observability story under parallel execution rests
on two properties: ``HistogramSnapshot.merge`` is associative and
commutative (order of absorption cannot matter), and absorbing the
payloads of a partitioned workload reproduces the serial tracer's
``merged_snapshot`` exactly.
"""

import random

from repro.obs.histogram import HistogramSnapshot, LatencyHistogram
from repro.obs.tracing import Tracer


def _snapshot(values) -> HistogramSnapshot:
    histogram = LatencyHistogram()
    for value in values:
        histogram.record(value)
    return histogram.snapshot()


# Dyadic rationals (small-mantissa multiples of 2^-24): sums of a few
# hundred of them are exact in IEEE 754, so regrouping the additions —
# which is all merge/absorb reordering does to `total` — cannot shift an
# ulp and equality below is exact, not approximate.
def _dyadic(rng: random.Random) -> float:
    return rng.randrange(1, 1 << 20) * 2.0 ** -24


def _sample_sets(seed: int = 42) -> list[list[float]]:
    rng = random.Random(seed)
    return [[_dyadic(rng) for _ in range(count)] for count in (1, 17, 300)]


class TestMergeAlgebra:
    def test_merge_is_commutative(self):
        a, b, _ = map(_snapshot, _sample_sets())
        assert a.merge(b) == b.merge(a)

    def test_merge_is_associative(self):
        a, b, c = map(_snapshot, _sample_sets())
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_equals_single_histogram_over_the_union(self):
        sets = _sample_sets()
        merged = _snapshot(sets[0]).merge(_snapshot(sets[1])).merge(
            _snapshot(sets[2]))
        union = _snapshot([v for values in sets for v in values])
        assert merged == union

    def test_empty_is_identity_on_both_sides(self):
        empty = LatencyHistogram().snapshot()
        full = _snapshot(_sample_sets()[2])
        assert empty.merge(full) == full
        assert full.merge(empty) == full

    def test_merge_preserves_extremes_and_mass(self):
        a, b, _ = map(_snapshot, _sample_sets(7))
        merged = a.merge(b)
        assert merged.count == a.count + b.count
        assert merged.total == a.total + b.total
        assert merged.minimum == min(a.minimum, b.minimum)
        assert merged.maximum == max(a.maximum, b.maximum)


class TestTracerAbsorption:
    @staticmethod
    def _record(tracer: Tracer, spans) -> None:
        for name, value in spans:
            tracer.observe(name, value)
            tracer.count(f"count.{name}")

    def _spans(self, seed: int = 9, n: int = 400):
        rng = random.Random(seed)
        names = ("wal.commit", "wal.append", "ssd.nvme.submit")
        return [(rng.choice(names), _dyadic(rng)) for _ in range(n)]

    def test_absorbing_partitions_reproduces_the_serial_tracer(self):
        spans = self._spans()
        serial = Tracer()
        self._record(serial, spans)

        absorbed = Tracer()
        for start in range(0, len(spans), 100):  # 4 "leg" partitions
            part = Tracer()
            self._record(part, spans[start:start + 100])
            absorbed.absorb(part.snapshot())

        assert absorbed.snapshot() == serial.snapshot()
        assert (absorbed.merged_snapshot("wal.")
                == serial.merged_snapshot("wal."))

    def test_absorption_order_does_not_matter(self):
        spans = self._spans(seed=31)
        parts = []
        for start in range(0, len(spans), 100):
            part = Tracer()
            self._record(part, spans[start:start + 100])
            parts.append(part.snapshot())

        forward, backward = Tracer(), Tracer()
        for payload in parts:
            forward.absorb(payload)
        for payload in reversed(parts):
            backward.absorb(payload)
        assert forward.snapshot() == backward.snapshot()

    def test_absorb_round_trips_through_json_safe_payload(self):
        import json

        part = Tracer()
        self._record(part, self._spans(seed=5, n=50))
        payload = json.loads(json.dumps(part.snapshot()))

        fresh = Tracer()
        fresh.absorb(payload)
        assert fresh.snapshot() == part.snapshot()
