"""Unit and property tests for the host CPU store path and WC buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host import ByteRegion, HostCPU, HostParams, PersistentMemoryRegion
from repro.pcie import PcieLink
from repro.sim import Engine
from repro.sim.units import NSEC, USEC


def make_cpu(params=None):
    engine = Engine()
    link = PcieLink(engine)
    return engine, HostCPU(engine, link, params=params)


class TestWriteCombining:
    def test_store_stages_without_landing(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)
        engine.run_process(cpu.wc_store(region, 0, b"hello"))
        assert region.read(0, 5) == bytes(5)
        assert cpu.wc.dirty_lines(region) == 1

    def test_flush_lands_staged_bytes(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)

        def scenario():
            yield engine.process(cpu.wc_store(region, 0, b"hello"))
            yield engine.process(cpu.wc_flush(region))
            yield engine.process(cpu.write_verify_read())

        engine.run_process(scenario())
        assert region.read(0, 5) == b"hello"
        assert cpu.wc.dirty_lines(region) == 0

    def test_overflow_evicts_oldest_line(self):
        engine, cpu = make_cpu(HostParams(wc_buffer_lines=2))
        region = ByteRegion("bar1", 4096)

        def scenario():
            for line in range(3):
                yield engine.process(cpu.wc_store(region, line * 64, bytes([line + 1]) * 8))
            # line 0 must have been evicted to make room; let it land.
            yield engine.process(cpu.write_verify_read())

        engine.run_process(scenario())
        assert region.read(0, 8) == bytes([1]) * 8
        assert cpu.wc.dirty_lines(region) == 2

    def test_power_loss_drops_unflushed_lines(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)

        def scenario():
            yield engine.process(cpu.wc_store(region, 0, b"doomed"))

        engine.run_process(scenario())
        lost = cpu.power_loss()
        assert lost == 1
        engine.run()
        assert region.read(0, 6) == bytes(6)

    def test_flushed_data_survives_power_loss(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)

        def scenario():
            yield engine.process(cpu.persistent_mmio_write(region, 0, b"durable"))

        engine.run_process(scenario())
        assert cpu.power_loss() == 0
        assert region.read(0, 7) == b"durable"

    def test_partial_line_spans_merge(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)

        def scenario():
            yield engine.process(cpu.wc_store(region, 10, b"aa"))
            yield engine.process(cpu.wc_store(region, 12, b"bb"))
            yield engine.process(cpu.wc_store(region, 20, b"cc"))
            yield engine.process(cpu.wc_flush(region))
            yield engine.process(cpu.write_verify_read())

        engine.run_process(scenario())
        assert region.read(10, 4) == b"aabb"
        assert region.read(20, 2) == b"cc"
        assert region.read(14, 6) == bytes(6)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 500), st.binary(min_size=1, max_size=80)),
                    min_size=1, max_size=30))
    def test_property_flush_makes_region_match_shadow(self, writes):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 1024)
        shadow = bytearray(1024)

        def scenario():
            for offset, data in writes:
                yield engine.process(cpu.wc_store(region, offset, data))
                shadow[offset:offset + len(data)] = data
            yield engine.process(cpu.wc_flush(region))
            yield engine.process(cpu.write_verify_read())

        engine.run_process(scenario())
        assert region.snapshot() == bytes(shadow)


class TestMmioTiming:
    def test_mmio_write_8_bytes_calibration(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)
        engine.run_process(cpu.mmio_write(region, 0, b"x" * 8))
        assert engine.now == pytest.approx(630 * NSEC, rel=0.02)

    def test_mmio_write_4k_calibration(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)
        engine.run_process(cpu.mmio_write(region, 0, b"x" * 4096))
        assert engine.now == pytest.approx(2000 * NSEC, rel=0.02)

    def test_persistent_write_overhead_small(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)
        engine.run_process(cpu.persistent_mmio_write(region, 0, b"x" * 8))
        # +15% over plain MMIO write at 8 bytes (Fig. 7b).
        assert engine.now == pytest.approx(1.15 * 630 * NSEC, rel=0.05)

    def test_persistent_write_overhead_4k(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)
        engine.run_process(cpu.persistent_mmio_write(region, 0, b"x" * 4096))
        # +47% over plain MMIO write at 4 KiB (Fig. 7b).
        assert engine.now == pytest.approx(1.47 * 2000 * NSEC, rel=0.05)

    def test_mmio_read_4k_calibration(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)

        def scenario():
            return (yield engine.process(cpu.mmio_read(region, 0, 4096)))

        engine.run_process(scenario())
        assert engine.now == pytest.approx(150 * USEC, rel=0.02)

    def test_mmio_read_returns_written_data(self):
        engine, cpu = make_cpu()
        region = ByteRegion("bar1", 4096)

        def scenario():
            yield engine.process(cpu.wc_store(region, 100, b"payload"))
            # Read must observe own staged writes (flush-before-read).
            return (yield engine.process(cpu.mmio_read(region, 100, 7)))

        assert engine.run_process(scenario()) == b"payload"


class TestPersistentMemory:
    def test_pm_write_is_durable_and_fast(self):
        engine, cpu = make_cpu()
        pm = PersistentMemoryRegion("nvdimm", 4096)
        engine.run_process(cpu.pm_write(pm, 0, b"log-record"))
        assert pm.read(0, 10) == b"log-record"
        # PM writes avoid the expensive MMIO fence.
        assert engine.now < 630 * NSEC


class TestByteRegion:
    def test_bounds_checked(self):
        region = ByteRegion("r", 16)
        with pytest.raises(ValueError):
            region.write(10, b"toolongdata")
        with pytest.raises(ValueError):
            region.read(-1, 4)

    def test_snapshot_restore_roundtrip(self):
        region = ByteRegion("r", 16)
        region.write(0, b"0123456789abcdef")
        image = region.snapshot()
        region.clear()
        assert region.read(0, 16) == bytes(16)
        region.restore(image)
        assert region.read(0, 16) == b"0123456789abcdef"

    def test_restore_size_mismatch_rejected(self):
        region = ByteRegion("r", 16)
        with pytest.raises(ValueError):
            region.restore(b"short")
