"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, SimulationError


def test_timeout_advances_clock():
    engine = Engine()

    def proc():
        yield engine.timeout(1.5)
        return engine.now

    assert engine.run_process(proc()) == pytest.approx(1.5)


def test_timeouts_fire_in_order():
    engine = Engine()
    fired = []

    def waiter(delay):
        yield engine.timeout(delay)
        fired.append(delay)

    for delay in (3.0, 1.0, 2.0):
        engine.process(waiter(delay))
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_equal_time_events_fire_fifo():
    engine = Engine()
    fired = []

    def waiter(tag):
        yield engine.timeout(1.0)
        fired.append(tag)

    for tag in ("a", "b", "c"):
        engine.process(waiter(tag))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_process_return_value_propagates():
    engine = Engine()

    def child():
        yield engine.timeout(1.0)
        return "done"

    def parent():
        result = yield engine.process(child())
        return result

    assert engine.run_process(parent()) == "done"


def test_yield_on_already_finished_process():
    engine = Engine()

    def child():
        yield engine.timeout(0.5)
        return 42

    def parent():
        proc = engine.process(child())
        yield engine.timeout(2.0)
        value = yield proc  # already completed
        return value, engine.now

    value, now = engine.run_process(parent())
    assert value == 42
    assert now == pytest.approx(2.0)


def test_exception_propagates_to_waiter():
    engine = Engine()

    def child():
        yield engine.timeout(0.1)
        raise ValueError("boom")

    def parent():
        yield engine.process(child())

    with pytest.raises(ValueError, match="boom"):
        engine.run_process(parent())


def test_unobserved_process_failure_raises_at_run_end():
    engine = Engine()

    def crasher():
        yield engine.timeout(0.1)
        raise RuntimeError("nobody is watching")

    engine.process(crasher())
    with pytest.raises(RuntimeError, match="nobody is watching"):
        engine.run()


def test_observed_failure_is_not_raised_twice():
    engine = Engine()

    def crasher():
        yield engine.timeout(0.1)
        raise RuntimeError("seen")

    def watcher(proc):
        try:
            yield proc
        except RuntimeError:
            return "handled"

    proc = engine.process(crasher())
    result = engine.run(until=engine.process(watcher(proc)))
    assert result == "handled"
    engine.run()  # must not re-raise


def test_run_until_time_stops_early():
    engine = Engine()
    fired = []

    def waiter():
        yield engine.timeout(10.0)
        fired.append(True)

    engine.process(waiter())
    engine.run(until=5.0)
    assert engine.now == pytest.approx(5.0)
    assert not fired
    engine.run()
    assert fired == [True]


def test_all_of_waits_for_every_child():
    engine = Engine()

    def worker(delay, value):
        yield engine.timeout(delay)
        return value

    def parent():
        procs = [engine.process(worker(d, d * 10)) for d in (3.0, 1.0, 2.0)]
        values = yield AllOf(engine, procs)
        return values, engine.now

    values, now = engine.run_process(parent())
    assert values == [30.0, 10.0, 20.0]
    assert now == pytest.approx(3.0)


def test_any_of_fires_on_first_child():
    engine = Engine()

    def worker(delay, value):
        yield engine.timeout(delay)
        return value

    def parent():
        procs = [engine.process(worker(d, d)) for d in (3.0, 1.0, 2.0)]
        first = yield AnyOf(engine, procs)
        return first, engine.now

    first, now = engine.run_process(parent())
    assert first == 1.0
    assert now == pytest.approx(1.0)


def test_all_of_empty_fires_immediately():
    engine = Engine()

    def parent():
        values = yield AllOf(engine, [])
        return values

    assert engine.run_process(parent()) == []


def test_manual_event_trigger():
    engine = Engine()
    gate = engine.event()

    def opener():
        yield engine.timeout(2.0)
        gate.succeed("open")

    def waiter():
        value = yield gate
        return value, engine.now

    engine.process(opener())
    value, now = engine.run_process(waiter())
    assert value == "open"
    assert now == pytest.approx(2.0)


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_negative_timeout_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.timeout(-1.0)


def test_yielding_non_event_is_an_error():
    engine = Engine()

    def bad():
        yield 42

    with pytest.raises(SimulationError, match="must yield Event"):
        engine.run_process(bad())


def test_deadlock_detected_when_awaiting_unreachable_event():
    engine = Engine()
    never = engine.event()

    def waiter():
        yield never

    with pytest.raises(SimulationError, match="deadlock"):
        engine.run_process(waiter())


def test_nested_processes_compose():
    engine = Engine()

    def leaf(delay):
        yield engine.timeout(delay)
        return delay

    def mid():
        a = yield engine.process(leaf(1.0))
        b = yield engine.process(leaf(2.0))
        return a + b

    def root():
        total = yield engine.process(mid())
        return total, engine.now

    total, now = engine.run_process(root())
    assert total == 3.0
    assert now == pytest.approx(3.0)


class TestPurge:
    def test_purge_drops_scheduled_events(self):
        engine = Engine()
        fired = []

        def waiter():
            yield engine.timeout(5.0)
            fired.append(True)

        engine.process(waiter())
        engine.run(until=1.0)
        discarded = engine.purge()
        assert discarded >= 1
        engine.run()
        assert not fired

    def test_purge_drops_impending_failures(self):
        engine = Engine()

        def crasher():
            yield engine.timeout(1.0)
            raise RuntimeError("to be purged")

        engine.process(crasher())
        engine.run(until=0.5)  # the crasher hasn't reached its raise yet
        engine.purge()
        engine.run()  # must not raise: the crasher died with the crash

    def test_work_after_purge_runs_normally(self):
        engine = Engine()

        def stuck():
            yield engine.timeout(100.0)

        engine.process(stuck())
        engine.run(until=1.0)
        engine.purge()

        def fresh():
            yield engine.timeout(1.0)
            return engine.now

        assert engine.run_process(fresh()) == 2.0
