"""Tests for the BA-buffer mapping table and LBA checker."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    BaMappingTable,
    EntryNotFoundError,
    GatedLbaError,
    MappingTableFullError,
    PinConflictError,
)
from repro.core.lba_checker import LbaChecker

PAGE = 4096


def make_table(buffer_pages=2048, max_entries=8):
    return BaMappingTable(buffer_pages * PAGE, max_entries, PAGE)


class TestMappingTable:
    def test_add_and_get(self):
        table = make_table()
        entry = table.add(0, 0, 100, 4 * PAGE)
        assert table.get(0) == entry
        assert entry.lba_range(PAGE) == (100, 104)
        assert entry.buffer_range() == (0, 4 * PAGE)

    def test_sub_page_length_rounds_up_lba_range(self):
        table = make_table()
        entry = table.add(0, 0, 10, 100)  # 100 bytes -> 1 page
        assert entry.lba_range(PAGE) == (10, 11)

    def test_max_entries_enforced(self):
        table = make_table(max_entries=2)
        table.add(0, 0, 0, PAGE)
        table.add(1, PAGE, 10, PAGE)
        with pytest.raises(PinConflictError, match="table full"):
            table.add(2, 2 * PAGE, 20, PAGE)

    def test_full_table_raises_typed_error(self):
        # Callers with a fallback path (the cluster pool's block-WAL leg)
        # need to tell "out of slots" apart from genuine pin conflicts.
        table = make_table(max_entries=2)
        table.add(0, 0, 0, PAGE)
        table.add(1, PAGE, 10, PAGE)
        with pytest.raises(MappingTableFullError):
            table.add(2, 2 * PAGE, 20, PAGE)
        assert issubclass(MappingTableFullError, PinConflictError)

    def test_slots_free_tracks_occupancy(self):
        table = make_table(max_entries=4)
        assert table.slots_free() == 4
        table.add(0, 0, 0, PAGE)
        table.add(1, PAGE, 10, PAGE)
        assert table.slots_free() == 2
        table.remove(0)
        assert table.slots_free() == 3

    def test_buffer_overlap_rejected(self):
        table = make_table()
        table.add(0, 0, 0, 4 * PAGE)
        with pytest.raises(PinConflictError, match="buffer range"):
            table.add(1, 2 * PAGE, 100, 4 * PAGE)

    def test_lba_overlap_rejected(self):
        table = make_table()
        table.add(0, 0, 50, 4 * PAGE)  # LBAs 50..53
        with pytest.raises(PinConflictError, match="LBA range"):
            table.add(1, 16 * PAGE, 53, PAGE)

    def test_duplicate_entry_id_rejected(self):
        table = make_table()
        table.add(0, 0, 0, PAGE)
        with pytest.raises(PinConflictError, match="already exists"):
            table.add(0, 4 * PAGE, 100, PAGE)

    def test_buffer_capacity_enforced(self):
        table = make_table(buffer_pages=4)
        with pytest.raises(PinConflictError, match="exceeds BA-buffer"):
            table.add(0, 0, 0, 5 * PAGE)

    def test_unaligned_offset_rejected(self):
        table = make_table()
        with pytest.raises(PinConflictError, match="page-aligned"):
            table.add(0, 100, 0, PAGE)

    def test_remove_frees_ranges(self):
        table = make_table()
        table.add(0, 0, 0, PAGE)
        table.remove(0)
        table.add(1, 0, 0, PAGE)  # ranges are free again
        assert 0 not in table
        assert 1 in table

    def test_get_missing_raises(self):
        table = make_table()
        with pytest.raises(EntryNotFoundError):
            table.get(42)

    def test_snapshot_roundtrip(self):
        table = make_table()
        table.add(0, 0, 0, PAGE)
        table.add(3, 4 * PAGE, 700, 2 * PAGE)
        snapshot = table.to_snapshot()
        fresh = make_table()
        fresh.restore_snapshot(snapshot)
        assert sorted(fresh.to_snapshot()) == sorted(snapshot)

    @given(st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 500), st.integers(1, 6)),
        max_size=40,
    ))
    def test_property_no_accepted_overlaps(self, pins):
        """Whatever the request sequence, accepted entries never overlap."""
        table = make_table(buffer_pages=64, max_entries=8)
        next_offset = 0
        for entry_id, lba, pages in pins:
            try:
                table.add(entry_id, (next_offset % 56) * PAGE, lba, pages * PAGE)
                next_offset += pages
            except PinConflictError:
                continue
        entries = table.entries()
        assert len(entries) <= 8
        for i, a in enumerate(entries):
            for b in entries[i + 1:]:
                a_buf, b_buf = a.buffer_range(), b.buffer_range()
                assert a_buf[1] <= b_buf[0] or b_buf[1] <= a_buf[0]
                a_lba, b_lba = a.lba_range(PAGE), b.lba_range(PAGE)
                assert a_lba[1] <= b_lba[0] or b_lba[1] <= a_lba[0]


class TestLbaChecker:
    def test_write_to_pinned_range_gated(self):
        table = make_table()
        table.add(0, 0, 100, 4 * PAGE)
        checker = LbaChecker(table)
        with pytest.raises(GatedLbaError, match="gated"):
            checker.check_write(102, 1)
        assert checker.stats.gated == 1

    def test_write_outside_pinned_range_allowed(self):
        table = make_table()
        table.add(0, 0, 100, 4 * PAGE)
        checker = LbaChecker(table)
        checker.check_write(104, 10)  # adjacent, not overlapping
        checker.check_write(0, 100)
        assert checker.stats.gated == 0
        assert checker.stats.checks == 2

    def test_partial_overlap_gated(self):
        table = make_table()
        table.add(0, 0, 100, 4 * PAGE)
        checker = LbaChecker(table)
        with pytest.raises(GatedLbaError):
            checker.check_write(98, 3)  # straddles the pin start

    def test_unpin_releases_gate(self):
        table = make_table()
        table.add(0, 0, 100, 4 * PAGE)
        checker = LbaChecker(table)
        table.remove(0)
        checker.check_write(100, 4)  # no longer pinned
        assert checker.stats.gated == 0
