"""Tests for the LSM engine: skiplist, SSTables, tree, recovery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.lsm import (
    DeviceTableStorage,
    LSMTree,
    MemoryTableStorage,
    SSTable,
    SkipList,
)
from repro.db.lsm.sst import SstFormatError, merge_tables
from repro.db.lsm.tree import decode_kv, encode_kv
from repro.sim import RngStreams
from repro.ssd import ULL_SSD
from repro.wal import BaWAL, BlockWAL
from tests.helpers import Platform, small_ba_params


class TestSkipList:
    def test_insert_get(self):
        skiplist = SkipList(random.Random(0))
        skiplist.insert("b", b"2")
        skiplist.insert("a", b"1")
        skiplist.insert("c", b"3")
        assert skiplist.get("a") == b"1"
        assert skiplist.get("missing") is None
        assert len(skiplist) == 3

    def test_replace_updates_value(self):
        skiplist = SkipList(random.Random(0))
        skiplist.insert("k", b"old")
        skiplist.insert("k", b"newer")
        assert skiplist.get("k") == b"newer"
        assert len(skiplist) == 1

    def test_items_sorted(self):
        skiplist = SkipList(random.Random(1))
        keys = [f"key{i:04d}" for i in random.Random(2).sample(range(1000), 300)]
        for key in keys:
            skiplist.insert(key, b"x")
        assert [k for k, _ in skiplist.items()] == sorted(keys)

    def test_bytes_accounting(self):
        skiplist = SkipList(random.Random(0))
        skiplist.insert("abc", b"12345")
        assert skiplist.approximate_bytes == 8
        skiplist.insert("abc", b"1234567890")
        assert skiplist.approximate_bytes == 13

    def test_range_items(self):
        skiplist = SkipList(random.Random(0))
        for i in range(20):
            skiplist.insert(f"k{i:02d}", bytes([i]))
        result = skiplist.range_items("k05", 3)
        assert [k for k, _ in result] == ["k05", "k06", "k07"]

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.binary(max_size=16), max_size=60))
    def test_property_matches_dict(self, mapping):
        skiplist = SkipList(random.Random(7))
        for key, value in mapping.items():
            skiplist.insert(key, value)
        assert dict(skiplist.items()) == mapping
        assert [k for k, _ in skiplist.items()] == sorted(mapping)


class TestSSTable:
    def test_roundtrip(self):
        entries = [("a", b"1"), ("b", None), ("c", b"3")]
        table = SSTable(entries)
        decoded = SSTable.decode(table.encode(), file_id=table.file_id)
        assert decoded.items() == entries
        assert decoded.get("b") == (True, None)  # tombstone found
        assert decoded.get("zz") == (False, None)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            SSTable([("b", b"1"), ("a", b"2")])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SSTable([("a", b"1"), ("a", b"2")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SSTable([])

    def test_corrupt_decode_rejected(self):
        blob = SSTable([("a", b"1")]).encode()
        with pytest.raises(SstFormatError):
            SSTable.decode(blob[:-1])
        with pytest.raises(SstFormatError):
            SSTable.decode(b"\x00" * 16)

    def test_overlaps(self):
        a = SSTable([("a", b""), ("m", b"")])
        b = SSTable([("k", b""), ("z", b"")])
        c = SSTable([("n", b""), ("z", b"")])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_merge_newest_wins(self):
        old = SSTable([("a", b"old"), ("b", b"keep")])
        new = SSTable([("a", b"new"), ("c", b"add")])
        merged = merge_tables([new, old], drop_tombstones=False)
        assert dict(merged.items()) == {"a": b"new", "b": b"keep", "c": b"add"}

    def test_merge_drops_tombstones(self):
        old = SSTable([("a", b"x"), ("b", b"y")])
        new = SSTable([("a", None)])
        merged = merge_tables([new, old], drop_tombstones=True)
        assert dict(merged.items()) == {"b": b"y"}

    def test_merge_to_nothing(self):
        table = SSTable([("a", None)])
        assert merge_tables([table], drop_tombstones=True) is None


class TestKvCodec:
    @given(st.text(min_size=1, max_size=20),
           st.one_of(st.none(), st.binary(max_size=64)))
    def test_property_roundtrip(self, key, value):
        assert decode_kv(encode_kv(key, value)) == (key, value)


def make_lsm(storage_kind="memory", memtable_bytes=4096, wal_kind="block"):
    platform = Platform(ba_params=small_ba_params(64))
    log_device = platform.add_block_ssd(ULL_SSD)
    if wal_kind == "block":
        wal = BlockWAL(platform.engine, log_device, platform.cpu, area_pages=4096)
    else:
        wal = BaWAL(platform.engine, platform.api, area_pages=4096)
        platform.engine.run_process(wal.start())
    if storage_kind == "memory":
        storage = MemoryTableStorage(platform.engine)
    else:
        data_device = platform.add_block_ssd(ULL_SSD, seed=13)
        storage = DeviceTableStorage(platform.engine, data_device)
    tree = LSMTree(platform.engine, wal, storage,
                   memtable_bytes=memtable_bytes, rng=RngStreams(3))
    return platform, tree


class TestLSMTree:
    def test_put_get_roundtrip(self):
        platform, tree = make_lsm()
        engine = platform.engine

        def scenario():
            yield engine.process(tree.put("alpha", b"one"))
            yield engine.process(tree.put("beta", b"two"))
            return (yield engine.process(tree.get("alpha")))

        assert engine.run_process(scenario()) == b"one"

    def test_delete_hides_key(self):
        platform, tree = make_lsm()
        engine = platform.engine

        def scenario():
            yield engine.process(tree.put("k", b"v"))
            yield engine.process(tree.delete("k"))
            return (yield engine.process(tree.get("k")))

        assert engine.run_process(scenario()) is None

    def test_flush_after_memtable_fills(self):
        platform, tree = make_lsm(memtable_bytes=2048)
        engine = platform.engine

        def scenario():
            for i in range(60):
                yield engine.process(tree.put(f"key{i:04d}", bytes(100)))
            # Everything must still be readable across memtable + SSTs.
            values = []
            for i in range(60):
                values.append((yield engine.process(tree.get(f"key{i:04d}"))))
            return values

        values = engine.run_process(scenario())
        assert all(v == bytes(100) for v in values)
        assert tree.flush_count > 0

    def test_compaction_merges_l0(self):
        platform, tree = make_lsm(memtable_bytes=1024)
        engine = platform.engine

        def scenario():
            for i in range(300):
                yield engine.process(tree.put(f"key{i % 40:04d}", bytes([i % 251]) * 60))
            return (yield engine.process(tree.get("key0000")))

        engine.run_process(scenario())
        engine.run()
        assert tree.compaction_count > 0
        assert len(tree._l0) < tree.l0_compaction_trigger

    def test_overwrites_return_latest_across_levels(self):
        platform, tree = make_lsm(memtable_bytes=1024)
        engine = platform.engine

        def scenario():
            for round_no in range(8):
                for i in range(20):
                    value = f"{round_no}-{i}".encode().ljust(50, b".")
                    yield engine.process(tree.put(f"key{i:04d}", value))
            results = []
            for i in range(20):
                results.append((yield engine.process(tree.get(f"key{i:04d}"))))
            return results

        results = engine.run_process(scenario())
        for i, value in enumerate(results):
            assert value.startswith(f"7-{i}".encode())

    def test_scan_merges_sources(self):
        platform, tree = make_lsm(memtable_bytes=1024)
        engine = platform.engine

        def scenario():
            for i in range(50):
                yield engine.process(tree.put(f"key{i:04d}", bytes([i])))
            yield engine.process(tree.delete("key0003"))
            return (yield engine.process(tree.scan("key0000", 5)))

        rows = engine.run_process(scenario())
        assert [k for k, _ in rows] == [
            "key0000", "key0001", "key0002", "key0004", "key0005",
        ]

    def test_recovery_from_device_storage(self):
        platform, tree = make_lsm(storage_kind="device", memtable_bytes=2048)
        engine = platform.engine

        def scenario():
            for i in range(80):
                yield engine.process(tree.put(f"key{i:04d}", b"val-%03d" % i))

        engine.run_process(scenario())
        platform.power.power_cycle()
        # Fresh tree over the same (recovered) WAL + storage.
        fresh = LSMTree(engine, tree.wal, tree.storage, memtable_bytes=2048,
                        rng=RngStreams(4))

        def recovery():
            replayed = yield engine.process(fresh.recover())
            values = []
            for i in range(80):
                values.append((yield engine.process(fresh.get(f"key{i:04d}"))))
            return replayed, values

        replayed, values = engine.run_process(recovery())
        assert values == [b"val-%03d" % i for i in range(80)]
        assert replayed > 0  # some records were only in the WAL

    def test_recovery_with_ba_wal(self):
        platform, tree = make_lsm(storage_kind="device", wal_kind="ba",
                                  memtable_bytes=2048)
        engine = platform.engine

        def scenario():
            for i in range(40):
                yield engine.process(tree.put(f"key{i:04d}", b"ba-%03d" % i))

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = LSMTree(engine, tree.wal, tree.storage, memtable_bytes=2048,
                        rng=RngStreams(4))

        def recovery():
            yield engine.process(fresh.recover())
            values = []
            for i in range(40):
                values.append((yield engine.process(fresh.get(f"key{i:04d}"))))
            return values

        values = engine.run_process(recovery())
        assert values == [b"ba-%03d" % i for i in range(40)]

    def test_write_stall_when_both_memtables_full(self):
        platform, tree = make_lsm(storage_kind="device", memtable_bytes=512)
        engine = platform.engine

        def scenario():
            for i in range(200):
                yield engine.process(tree.put(f"key{i:05d}", bytes(100)))

        engine.run_process(scenario())
        assert tree.write_stalls >= 0  # may or may not stall; counter exists
        assert tree.flush_count > 1

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.text(min_size=1, max_size=6),
                              st.one_of(st.none(), st.binary(max_size=40))),
                    min_size=1, max_size=80))
    def test_property_matches_dict(self, ops):
        platform, tree = make_lsm(memtable_bytes=1024)
        engine = platform.engine
        shadow: dict[str, bytes] = {}

        def scenario():
            for key, value in ops:
                if value is None:
                    yield engine.process(tree.delete(key))
                    shadow.pop(key, None)
                else:
                    yield engine.process(tree.put(key, value))
                    shadow[key] = value
            for key in {k for k, _v in ops}:
                got = yield engine.process(tree.get(key))
                assert got == shadow.get(key)

        engine.run_process(scenario())


class TestDeviceTableStorage:
    def test_write_read_roundtrip(self):
        platform = Platform()
        device = platform.add_block_ssd(ULL_SSD)
        storage = DeviceTableStorage(platform.engine, device)
        engine = platform.engine
        blob = bytes(range(256)) * 20

        def scenario():
            yield engine.process(storage.write_table(1, blob))
            return (yield engine.process(storage.read_table(1)))

        assert engine.run_process(scenario())[:len(blob)] == blob

    def test_delete_recycles_extents(self):
        platform = Platform()
        device = platform.add_block_ssd(ULL_SSD)
        storage = DeviceTableStorage(platform.engine, device, capacity_pages=16)
        engine = platform.engine

        def scenario():
            for round_no in range(10):
                yield engine.process(storage.write_table(round_no, bytes(4096 * 4)))
                storage.delete_table(round_no)

        engine.run_process(scenario())  # would exhaust without recycling

    def test_manifest_roundtrip_across_instances(self):
        platform = Platform()
        device = platform.add_block_ssd(ULL_SSD)
        storage = DeviceTableStorage(platform.engine, device)
        engine = platform.engine

        def scenario():
            yield engine.process(storage.write_table(7, b"table-seven"))
            yield engine.process(storage.write_manifest({"wal_start": 123}))

        engine.run_process(scenario())
        fresh = DeviceTableStorage(engine, device)

        def reload():
            manifest = yield engine.process(fresh.read_manifest())
            blob = yield engine.process(fresh.read_table(7))
            return manifest, blob

        manifest, blob = engine.run_process(reload())
        assert manifest["wal_start"] == 123
        assert blob[:11] == b"table-seven"


class TestLeveledCompaction:
    def test_l1_runs_stay_non_overlapping(self):
        platform, tree = make_lsm(memtable_bytes=512)
        engine = platform.engine

        def scenario():
            for i in range(400):
                yield engine.process(tree.put(f"key{i % 80:04d}", bytes(60)))

        engine.run_process(scenario())
        engine.run()
        assert tree.compaction_count > 0
        runs = tree._l1
        assert runs == sorted(runs, key=lambda t: t.min_key)
        for left, right in zip(runs, runs[1:]):
            assert left.max_key < right.min_key

    def test_output_runs_are_size_bounded(self):
        platform, tree = make_lsm(memtable_bytes=512)
        engine = platform.engine

        def scenario():
            for i in range(300):
                yield engine.process(tree.put(f"key{i:04d}", bytes(100)))

        engine.run_process(scenario())
        engine.run()
        if len(tree._l1) > 1:
            for run in tree._l1[:-1]:
                assert run.data_bytes <= 3 * tree.memtable_bytes

    def test_tombstones_do_not_resurrect_values(self):
        """Deleting a key whose value sits in an L1 run, then compacting,
        must never bring the old value back."""
        platform, tree = make_lsm(memtable_bytes=512)
        engine = platform.engine

        def scenario():
            # Push 'victim' down into L1 via churn.
            yield engine.process(tree.put("victim", b"old-value"))
            for i in range(200):
                yield engine.process(tree.put(f"filler{i:04d}", bytes(60)))
            yield engine.process(tree.delete("victim"))
            # More churn forces compactions that merge the tombstone down.
            for i in range(200):
                yield engine.process(tree.put(f"more{i:04d}", bytes(60)))
            return (yield engine.process(tree.get("victim")))

        assert engine.run_process(scenario()) is None
        engine.run()

        def after_compaction():
            return (yield engine.process(tree.get("victim")))

        assert engine.run_process(after_compaction()) is None

    def test_recovery_with_multiple_l1_runs(self):
        platform, tree = make_lsm(storage_kind="device", memtable_bytes=512)
        engine = platform.engine

        def scenario():
            for i in range(250):
                yield engine.process(tree.put(f"key{i:04d}", b"v%04d" % i))

        engine.run_process(scenario())
        engine.run()
        platform.power.power_cycle()
        fresh = LSMTree(engine, tree.wal, tree.storage, memtable_bytes=512,
                        rng=RngStreams(9))

        def recovery():
            yield engine.process(fresh.recover())
            values = []
            for i in range(250):
                values.append((yield engine.process(fresh.get(f"key{i:04d}"))))
            return values

        values = engine.run_process(recovery())
        assert values == [b"v%04d" % i for i in range(250)]
