"""Dual-path consistency fuzzing.

The paper's central safety claim (§III-A2): two independent datapaths to
the same NAND pages stay consistent because the mapping table + LBA
checker serialize who owns which range.  This fuzzer drives random
interleavings of block writes, pins, MMIO writes, syncs, flushes, block
reads and power cycles against a shadow model of what the protocol
*promises*, and fails on any divergence.

Shadow semantics per page (``None`` = undefined):

* ``nand[p]`` — what the block path must read;
* per pinned entry, ``synced`` and ``staged`` buffer images;
* block writes to pinned pages must be gated, pins of pinned pages or
  occupied buffer slots must be rejected;
* ``BA_FLUSH`` publishes ``staged`` to NAND; ``BA_PIN`` loads NAND;
* after a power cycle, an entry whose staged bytes were never synced has
  *undefined* contents (partially-evicted WC lines may have landed before
  the crash) — the shadow adopts the next observed read as ground truth,
  after which determinism must hold again.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GatedLbaError, PinConflictError
from tests.helpers import Platform, small_ba_params

PAGE = 4096
PAGES = 6
BUFFER_SLOTS = 4


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("block_write"), st.integers(0, PAGES - 1),
                  st.integers(0, 255)),
        st.tuples(st.just("pin"), st.integers(0, PAGES - 1),
                  st.integers(0, BUFFER_SLOTS - 1)),
        st.tuples(st.just("mmio_write"), st.integers(0, 7),
                  st.integers(0, 255)),
        st.tuples(st.just("sync"), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("flush"), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("block_read"), st.integers(0, PAGES - 1), st.just(0)),
        st.tuples(st.just("mmio_read"), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("power_cycle"), st.just(0), st.just(0)),
    ),
    min_size=1, max_size=40,
)


def fill(tag: int) -> bytes:
    return bytes([tag]) * PAGE


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(OPS)
def test_dual_path_interleavings_match_shadow(ops):
    platform = Platform(ba_params=small_ba_params(buffer_kib=16), seed=71)
    engine, api, device = platform.engine, platform.api, platform.device

    nand = {p: bytes(PAGE) for p in range(PAGES)}   # page -> bytes | None
    entries = {}   # eid -> {"page", "slot", "synced", "staged"}
    slots_used = set()
    next_eid = [0]

    def pinned(page):
        return any(e["page"] == page for e in entries.values())

    def run_segment(segment):
        """Process: execute ops until a power_cycle (returns True) or end."""

        def driver():
            for op, a, b in segment:
                if op == "block_write":
                    page, tag = a, b
                    try:
                        yield engine.process(device.write(page, fill(tag)))
                        assert not pinned(page), (
                            f"block write to pinned page {page} was NOT gated")
                        nand[page] = fill(tag)
                    except GatedLbaError:
                        assert pinned(page), (
                            f"block write to unpinned page {page} was gated")
                elif op == "pin":
                    page, slot = a, b
                    eid = next_eid[0]
                    try:
                        yield engine.process(
                            api.ba_pin(eid, slot * PAGE, page, PAGE))
                        assert not pinned(page) and slot not in slots_used
                        next_eid[0] += 1
                        entries[eid] = {"page": page, "slot": slot,
                                        "synced": nand[page],
                                        "staged": nand[page]}
                        slots_used.add(slot)
                    except PinConflictError:
                        assert (pinned(page) or slot in slots_used
                                or len(entries) >= 8)
                elif op == "mmio_write":
                    eid, tag = a, b
                    if eid not in entries:
                        continue
                    entry = device.mapping_table.get(eid)
                    yield engine.process(api.mmio_write(entry, 0, fill(tag)))
                    entries[eid]["staged"] = fill(tag)
                elif op == "sync":
                    eid = a
                    if eid not in entries:
                        continue
                    yield engine.process(api.ba_sync(eid))
                    entries[eid]["synced"] = entries[eid]["staged"]
                elif op == "flush":
                    eid = a
                    if eid not in entries:
                        continue
                    yield engine.process(api.ba_flush(eid))
                    state = entries.pop(eid)
                    slots_used.discard(state["slot"])
                    nand[state["page"]] = state["staged"]
                elif op == "block_read":
                    page = a
                    data = yield engine.process(device.read(page, PAGE))
                    if nand[page] is None:
                        nand[page] = bytes(data)  # adopt: defined from here on
                    else:
                        assert data == nand[page], f"block read page {page}"
                elif op == "mmio_read":
                    eid = a
                    if eid not in entries:
                        continue
                    entry = device.mapping_table.get(eid)
                    data = yield engine.process(api.mmio_read(entry, 0, PAGE))
                    if entries[eid]["staged"] is None:
                        entries[eid]["staged"] = bytes(data)
                    else:
                        assert bytes(data) == entries[eid]["staged"], (
                            f"mmio read entry {eid}")
                elif op == "power_cycle":
                    return True
            return False

        return driver()

    remaining = list(ops)
    while remaining:
        index = next((i for i, (op, _a, _b) in enumerate(remaining)
                      if op == "power_cycle"), None)
        segment = remaining if index is None else remaining[:index + 1]
        crashed = engine.run_process(run_segment(segment))
        remaining = [] if index is None else remaining[index + 1:]
        if crashed:
            platform.power.power_cycle()
            for state in entries.values():
                if state["staged"] != state["synced"]:
                    # Un-synced writes are lost or partially landed:
                    # contents undefined until the next full overwrite
                    # or observation.
                    state["staged"] = None
                    state["synced"] = None

    live_entries = {e.entry_id for e in device.mapping_table.entries()}
    assert live_entries == set(entries)

    # Post-run deep check: after draining the WC buffer, every pinned
    # entry's device-side buffer bytes match the shadow where defined.
    def drain_wc():
        yield engine.process(platform.cpu.wc_flush(device.ba_dram))
        yield engine.process(platform.cpu.write_verify_read())

    engine.run_process(drain_wc())
    for eid, state in entries.items():
        if state["staged"] is not None:
            entry = device.mapping_table.get(eid)
            actual = device.ba_dram.read(entry.offset, PAGE)
            assert actual == state["staged"]