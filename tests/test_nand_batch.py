"""Batched NAND operations: timing equivalence and failure containment.

The batch machinery replaces one process per page with one worker per
die; its contract is that *simulated* timing is bit-identical to the
per-page spawn loop.  Each equivalence test drives two same-seed twin
engines — one per-page, one batched — and compares per-page completion
times as exact floats, plus data and stats.
"""

import pytest

from repro.analysis import sanitizer as simsan
from repro.nand.array import (
    FlashArray,
    NandProtocolError,
    SimulationBatchClosed,
)
from repro.nand.geometry import NandGeometry
from repro.sim import Engine, RngStreams

PAGE = 64


def _build(seed=7):
    engine = Engine()
    array = FlashArray(
        engine,
        NandGeometry(channels=2, dies_per_channel=2,
                     blocks_per_die=4, pages_per_block=8, page_size=PAGE),
        rng=RngStreams(seed),
    )
    return engine, array


def _populate(engine, array, npages):
    def drive():
        for ppn in range(npages):
            yield engine.process(array.program_page(ppn, bytes([ppn & 0xFF]) * PAGE))
    engine.run_process(drive())


def test_batched_reads_match_per_page_completion_times():
    engine_a, array_a = _build()
    _populate(engine_a, array_a, 24)
    per_page = {}

    def reader(ppn):
        data = yield engine_a.process(array_a.read_page(ppn))
        per_page[ppn] = (engine_a.now, data)

    def drive_per_page():
        yield engine_a.all_of([engine_a.process(reader(p)) for p in range(24)])

    engine_a.run_process(drive_per_page())

    engine_b, array_b = _build()
    _populate(engine_b, array_b, 24)
    batched = {}

    def drive_batched():
        batch = array_b.read_batch()
        for ppn in range(24):
            batch.submit(ppn,
                         on_data=lambda tok, data: batched.__setitem__(
                             tok, (engine_b.now, data)),
                         token=ppn)
        yield from batch.drain()

    engine_b.run_process(drive_batched())

    assert per_page == batched  # exact float times and bytes
    assert array_a.stats.page_reads == array_b.stats.page_reads == 24
    assert array_a.stats.read_retries == array_b.stats.read_retries


def test_batched_programs_match_per_page_completion_times():
    engine_a, array_a = _build()
    _populate(engine_a, array_a, 16)
    per_page = {}

    def writer(ppn):
        yield engine_a.process(array_a.program_page(ppn, bytes([ppn]) * PAGE))
        per_page[ppn] = engine_a.now

    def drive_per_page():
        yield engine_a.all_of([engine_a.process(writer(p)) for p in range(16, 40)])

    engine_a.run_process(drive_per_page())

    engine_b, array_b = _build()
    _populate(engine_b, array_b, 16)
    batched = {}

    def drive_batched():
        batch = array_b.program_batch()
        for ppn in range(16, 40):
            batch.submit(ppn, bytes([ppn]) * PAGE,
                         on_done=lambda tok: batched.__setitem__(tok, engine_b.now),
                         token=ppn)
        yield from batch.drain()

    engine_b.run_process(drive_batched())

    assert per_page == batched
    assert array_a._data == array_b._data
    assert array_a.stats.page_programs == array_b.stats.page_programs == 16 + 24


def test_streaming_submissions_match_staggered_per_page_spawns():
    """Pages submitted at different instants (the pin/flush pacing shape)
    land identically to per-page processes spawned at those instants."""
    gap = 3e-6

    engine_a, array_a = _build()
    _populate(engine_a, array_a, 24)
    per_page = {}

    def reader(ppn):
        data = yield engine_a.process(array_a.read_page(ppn))
        per_page[ppn] = (engine_a.now, data[:4])

    def drive_per_page():
        for ppn in range(24):
            engine_a.process(reader(ppn))
            yield engine_a.timeout(gap)

    engine_a.run_process(drive_per_page())
    engine_a.run()

    engine_b, array_b = _build()
    _populate(engine_b, array_b, 24)
    batched = {}

    def drive_batched():
        batch = array_b.read_batch()
        for ppn in range(24):
            batch.submit(ppn,
                         on_data=lambda tok, data: batched.__setitem__(
                             tok, (engine_b.now, data[:4])),
                         token=ppn)
            yield engine_b.timeout(gap)
        yield from batch.drain()

    engine_b.run_process(drive_batched())

    assert per_page == batched


def test_read_pages_wrapper_matches_per_page_spawn_times():
    """The ``read_pages`` convenience wrapper is timing-identical to
    spawning one ``read_page`` process per page at the call instant —
    same final clock, same RNG draw sequence, same stats."""
    engine_a, array_a = _build()
    _populate(engine_a, array_a, 24)

    def drive_per_page():
        yield engine_a.all_of(
            [engine_a.process(array_a.read_page(p)) for p in range(24)])

    engine_a.run_process(drive_per_page())

    engine_b, array_b = _build()
    _populate(engine_b, array_b, 24)
    contents = engine_b.run_process(array_b.read_pages(list(range(24))))

    assert engine_a.now == engine_b.now  # exact float equality
    assert array_a._rng.getstate() == array_b._rng.getstate()
    assert array_a.stats.page_reads == array_b.stats.page_reads == 24
    assert contents == [array_b.peek(p) for p in range(24)]


def test_program_pages_wrapper_matches_per_page_spawn_times():
    engine_a, array_a = _build()

    def drive_per_page():
        yield engine_a.all_of([
            engine_a.process(array_a.program_page(p, bytes([p + 1]) * PAGE))
            for p in range(12)])

    engine_a.run_process(drive_per_page())

    engine_b, array_b = _build()
    engine_b.run_process(array_b.program_pages(
        [(p, bytes([p + 1]) * PAGE) for p in range(12)]))

    assert engine_a.now == engine_b.now
    assert array_a._rng.getstate() == array_b._rng.getstate()
    assert array_a._data == array_b._data


def test_batched_reads_on_slow_die_match_per_page():
    """Die-slowdown fault injection scales batched and per-page reads
    identically — the worker consults the slowdown map per operation."""
    def build_slow(factor):
        engine, array = _build()
        _populate(engine, array, 24)
        # Pages 0..23 all map to die (0, 0) in this geometry — slow the
        # die the workload actually touches.
        array.set_die_slowdown(array.die_index(0, 0), factor)
        return engine, array

    engine_a, array_a = build_slow(3.0)
    per_page = {}

    def reader(ppn):
        data = yield engine_a.process(array_a.read_page(ppn))
        per_page[ppn] = (engine_a.now, data[:2])

    def drive_per_page():
        yield engine_a.all_of([engine_a.process(reader(p)) for p in range(24)])

    engine_a.run_process(drive_per_page())

    engine_b, array_b = build_slow(3.0)
    batched = {}

    def drive_batched():
        batch = array_b.read_batch()
        for ppn in range(24):
            batch.submit(ppn,
                         on_data=lambda tok, data: batched.__setitem__(
                             tok, (engine_b.now, data[:2])),
                         token=ppn)
        yield from batch.drain()

    engine_b.run_process(drive_batched())

    assert per_page == batched
    # The slow die really did slow down relative to a healthy run.
    engine_c, array_c = _build()
    _populate(engine_c, array_c, 24)
    engine_c.run_process(array_c.read_pages(list(range(24))))
    assert engine_b.now > engine_c.now


def test_batched_ops_are_sanitizer_clean():
    """Batch workers keep every die/durability invariant the per-page
    paths are instrumented for — zero violations under simsan."""
    with simsan.activated() as state:
        engine, array = _build()
        _populate(engine, array, 16)
        engine.run_process(array.program_pages(
            [(p, bytes([p]) * PAGE) for p in range(16, 32)]))
        data = engine.run_process(array.read_pages(list(range(32))))
        assert data[20] == bytes([20]) * PAGE
        assert state.checks > 0
        assert state.violations == 0


def test_read_pages_returns_contents_in_request_order():
    engine, array = _build()
    _populate(engine, array, 8)
    ppns = [5, 0, 7, 3, 20]  # 20 was never programmed
    contents = engine.run_process(array.read_pages(ppns))
    assert contents == [array.peek(p) for p in ppns]
    assert contents[-1] == bytes(PAGE)


def test_program_pages_equivalent_to_sequential_state():
    engine, array = _build()
    pages = [(ppn, bytes([ppn + 1]) * PAGE) for ppn in range(12)]
    engine.run_process(array.program_pages(pages))
    for ppn, data in pages:
        assert array.peek(ppn) == data
    assert array.stats.page_programs == 12


def test_program_batch_failure_does_not_deadlock_the_die():
    engine, array = _build()
    _populate(engine, array, 1)  # page 0 programmed -> reprogram violates

    def drive():
        batch = array.program_batch()
        batch.submit(0, b"x" * PAGE)       # erase-before-program violation
        batch.submit(1, b"y" * PAGE)       # same die, queued behind it
        yield from batch.drain()

    with pytest.raises(NandProtocolError):
        engine.run_process(drive())
    # The die must be usable afterwards: the aborted batch released every
    # die claim it still held.
    data = engine.run_process(array.read_pages([0]))
    assert data == [array.peek(0)]


def test_submit_after_drain_raises():
    engine, array = _build()

    def drive():
        batch = array.read_batch()
        yield from batch.drain()
        batch.submit(0)

    with pytest.raises(SimulationBatchClosed):
        engine.run_process(drive())


def test_wear_summary_matches_brute_force_and_skips_untouched():
    engine, array = _build()
    _populate(engine, array, 8)

    def erase_some():
        yield engine.process(array.erase_block(0, 0, 0))
        yield engine.process(array.erase_block(0, 0, 0))
        yield engine.process(array.erase_block(0, 1, 2))

    engine.run_process(erase_some())
    summary = array.wear_summary()
    geometry = array.geometry
    # Only touched blocks may be materialized (the whole point) — checked
    # before the brute-force sweep below materializes every block.
    assert len(array._blocks) < geometry.blocks
    brute = [
        array.erase_count(channel, die, block)
        for channel in range(geometry.channels)
        for die in range(geometry.dies_per_channel)
        for block in range(geometry.blocks_per_die)
    ]
    assert summary["min"] == float(min(brute)) == 0.0
    assert summary["max"] == float(max(brute)) == 2.0
    assert summary["mean"] == sum(brute) / len(brute)
    assert summary["total"] == float(sum(brute)) == 3.0
