"""The wall-clock perf harness: emission smoke test and artifact schema.

The measurement itself is marked ``perf`` (wall-clock numbers are
machine-dependent and slow-ish); the schema check of the committed
``BENCH_wallclock.json`` artifact runs everywhere.
"""

import json
import pathlib

import pytest

from repro.bench import wallclock

ARTIFACT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_wallclock.json"


@pytest.mark.perf
def test_harness_emits_schema_valid_report(tmp_path):
    path = tmp_path / "BENCH_wallclock.json"
    payload = wallclock.write_report(path, skip_figs=True)
    assert path.exists()
    loaded = json.loads(path.read_text())
    assert loaded == payload
    wallclock.validate_report(loaded)
    micro = loaded["results"]["microbench"]
    assert micro["iters_per_sec"] > 0
    assert micro["events_per_sec"] == pytest.approx(
        micro["iters_per_sec"] * wallclock.EVENTS_PER_ITERATION)


def test_committed_bench_artifact_is_schema_valid():
    assert ARTIFACT.exists(), (
        "BENCH_wallclock.json missing — run: PYTHONPATH=src python -m repro perf"
    )
    payload = json.loads(ARTIFACT.read_text())
    wallclock.validate_report(payload)
    assert payload["pass"] is True


def test_committed_artifact_reports_runner_speedups():
    """The committed runner section must meet its targets with the cache
    accounting that explains *why* (warm legs hitting one stored snapshot)."""
    payload = json.loads(ARTIFACT.read_text())
    runner = payload["results"]["runner"]
    targets = payload["targets"]
    assert runner["deterministic"] is True
    assert runner["matrix_speedup"] >= targets["runner_matrix_speedup_min"]
    assert runner["sweep"]["speedup"] >= targets["runner_sweep_speedup_min"]
    cache = runner["snapshot_cache"]
    assert cache["misses"] == cache["stores"]
    assert cache["hits"] >= 1


def test_validate_report_rejects_malformed_payloads():
    good = {
        "schema": wallclock.SCHEMA,
        "baseline": dict(wallclock.BASELINE),
        "targets": dict(wallclock.TARGETS),
        "results": {"microbench": {
            "iters_per_sec": 1.0, "events_per_sec": 8.0,
            "speedup_vs_baseline": 1.0,
        }},
        "pass": True,
    }
    wallclock.validate_report(good)  # sanity: accepted
    with pytest.raises(ValueError):
        wallclock.validate_report({**good, "schema": "other/v9"})
    with pytest.raises(ValueError):
        wallclock.validate_report({k: v for k, v in good.items() if k != "results"})
    bad_micro = {**good, "results": {"microbench": {"iters_per_sec": "fast"}}}
    with pytest.raises(ValueError):
        wallclock.validate_report(bad_micro)
    bad_runner = {**good, "results": {
        **good["results"],
        "runner": {"matrix_speedup": 2.5, "serial_seconds": 1.0,
                   "parallel_seconds": 0.4, "sweep": {"speedup": 2.0}},
    }}
    with pytest.raises(ValueError, match="deterministic"):
        wallclock.validate_report(bad_runner)
