"""simsan: the runtime invariant sanitizer catches seeded protocol bugs.

Each mutant below is a realistic buggy rewrite of an instrumented call
site — the sanitizer hooks stay in place, only the protocol around them
regresses (the TSan-style convention for sanitizer tests).  Every mutant
must raise :class:`SanitizerError` with the right invariant ID, and the
same workloads must run violation-free without the mutation.
"""

import pytest

from repro.analysis import sanitizer as simsan
from repro.analysis.sanitizer import SanitizerError
from repro.core.lba_checker import LbaChecker
from repro.core.mapping_table import BaMappingEntry, BaMappingTable
from repro.host.wc import WriteCombiningBuffer
from repro.sim import Engine

PAGE = 4096


def run_log_workload(platform, entry_id=0, lba=300, nbytes=200):
    """Pin a page, write bytes over MMIO, sync, flush — the paper's WAL path."""
    engine, api = platform.engine, platform.api

    def scenario():
        entry = yield engine.process(api.ba_pin(entry_id, 0, lba, PAGE))
        payload = bytes(index % 256 for index in range(nbytes))
        yield engine.process(api.mmio_write(entry, 0, payload))
        yield engine.process(api.ba_sync(entry_id))
        yield engine.process(api.ba_flush(entry_id))
        return entry

    return engine.run_process(scenario())


class TestCleanRuns:
    def test_disabled_by_default(self):
        assert simsan.enabled is False

    def test_fixture_enables_and_restores(self, sanitized_device):
        assert simsan.enabled is True
        assert sanitized_device.sanitizer_state.violations == 0

    def test_clean_workload_has_zero_violations(self, sanitized_device):
        run_log_workload(sanitized_device)
        state = sanitized_device.sanitizer_state
        assert state.checks > 0
        assert state.violations == 0

    def test_error_message_carries_span_context(self):
        error = SanitizerError("die.exclusivity", "two ops on one die",
                               sim_time=1.5e-6, context={"op": "read"})
        assert "[die.exclusivity]" in str(error)
        assert "t=0.000001500s" in str(error)
        assert "op='read'" in str(error)


class TestDieAccessMutants:
    def test_mutant_released_die_before_timed_section(self, sanitized_device):
        """Mutant: a refactor returns the die *before* the cell operation
        (the reservation is created and immediately released), keeping the
        instrumentation in place -> ``die.unreserved``."""
        platform = sanitized_device
        flash = platform.device.flash
        engine = platform.engine

        def buggy_read(ppn):
            addr = flash.address(ppn)
            die_res = flash._die_resource(addr.channel, addr.die)
            die_req = die_res.request()
            yield die_req
            die_res.release(die_req)  # bug: die no longer held for the op
            simsan.die_op_begin(flash, addr, die_res, die_req, "read")
            try:
                yield engine.timeout(flash.timing.sample_read(flash._rng))
            finally:
                simsan.die_op_end(flash, addr, die_res, die_req, "read")

        with pytest.raises(SanitizerError) as excinfo:
            engine.run_process(buggy_read(0))
        assert excinfo.value.invariant == "die.unreserved"
        assert excinfo.value.sim_time is not None

    def test_mutant_hardcoded_die_index(self, sanitized_device):
        """Mutant: the die-index computation regresses to die (0,0) while
        the page lives on another die -> ``die.wrong-resource``."""
        platform = sanitized_device
        flash = platform.device.flash
        engine = platform.engine
        ppn_on_other_die = flash.geometry.ppn(0, 1, 0, 0)

        def buggy_program(ppn):
            addr = flash.address(ppn)
            die_res = flash._die_resource(0, 0)  # bug: wrong die's arbiter
            die_req = die_res.request()
            yield die_req
            simsan.die_op_begin(flash, addr, die_res, die_req, "program")
            try:
                yield engine.timeout(flash.timing.sample_program(flash._rng))
            finally:
                simsan.die_op_end(flash, addr, die_res, die_req, "program")
                die_res.release(die_req)

        with pytest.raises(SanitizerError) as excinfo:
            engine.run_process(buggy_program(ppn_on_other_die))
        assert excinfo.value.invariant == "die.wrong-resource"


class TestDurabilityMutants:
    def test_mutant_write_verify_before_flush(self, sanitized_device, monkeypatch):
        """Mutant: BA_SYNC issues the write-verify read *before* draining
        the WC lines (the §III-B ordering inverted) -> ``sync.reordered``."""
        platform = sanitized_device
        api, engine = platform.api, platform.engine

        def buggy_sync(entry_id):
            entry = yield engine.process(api.ba_get_entry_info(entry_id))
            simsan.sync_begin(entry_id, api.region, entry.offset, entry.length)
            try:
                # bug: verify read first, flush second
                yield engine.process(api.cpu.write_verify_read(0))
                yield engine.process(
                    api.cpu.wc_flush(api.region, entry.offset, entry.length)
                )
            finally:
                simsan.sync_end(entry_id)
            return entry

        monkeypatch.setattr(api, "ba_sync", buggy_sync)
        with pytest.raises(SanitizerError) as excinfo:
            run_log_workload(platform)
        assert excinfo.value.invariant == "sync.reordered"

    def test_mutant_flush_that_misses_lines(self, sanitized_device, monkeypatch):
        """Mutant: the WC flush implementation regresses to draining only
        the first matching line; the protocol *order* is intact but bytes
        are still staged at verify time -> ``sync.dirty-lines``."""
        platform = sanitized_device
        wc = platform.cpu.wc
        line = wc.line_size

        def buggy_flush(region=None, offset=0, nbytes=None):
            return WriteCombiningBuffer.flush(wc, region, offset, line)

        monkeypatch.setattr(wc, "flush", buggy_flush)
        with pytest.raises(SanitizerError) as excinfo:
            run_log_workload(platform, nbytes=4 * line)
        assert excinfo.value.invariant == "sync.dirty-lines"
        assert excinfo.value.context["staged_lines"] > 0


class TestMappingTableMutants:
    @staticmethod
    def _unchecked_add(table, entry_id, offset, lba, length):
        """The shared mutant: an ``add`` whose validation regressed away."""
        entry = BaMappingEntry(entry_id, offset, lba, length)
        table._entries[entry_id] = entry
        return entry

    def test_mutant_ninth_entry(self, sanitized_device, monkeypatch):
        """Mutant: capacity check lost from ``add`` -> the 9th pin breaks
        the Table I limit -> ``table.invariant``."""
        platform = sanitized_device
        engine, api = platform.engine, platform.api
        monkeypatch.setattr(BaMappingTable, "add", self._unchecked_add)

        def scenario():
            for index in range(9):
                yield engine.process(
                    api.ba_pin(index, index * PAGE, 100 + 2 * index, PAGE)
                )

        with pytest.raises(SanitizerError) as excinfo:
            engine.run_process(scenario())
        assert excinfo.value.invariant == "table.invariant"
        assert "exceed the Table I limit" in excinfo.value.context["problems"][0]

    def test_mutant_overlapping_pin(self, sanitized_device, monkeypatch):
        """Mutant: overlap check lost from ``add`` -> two pins cover the
        same LBA range -> ``table.invariant``."""
        platform = sanitized_device
        engine, api = platform.engine, platform.api
        monkeypatch.setattr(BaMappingTable, "add", self._unchecked_add)

        def scenario():
            yield engine.process(api.ba_pin(0, 0, 500, PAGE))
            yield engine.process(api.ba_pin(1, PAGE, 500, PAGE))  # same LBA

        with pytest.raises(SanitizerError) as excinfo:
            engine.run_process(scenario())
        assert excinfo.value.invariant == "table.invariant"

    def test_mutant_checker_bound_to_stale_table(self, sanitized_device):
        """Mutant: recovery rebuilds the LBA checker against a fresh table
        object, so block writes into pinned ranges stop being gated ->
        ``table.checker-split``."""
        platform = sanitized_device
        device = platform.device
        device.lba_gate = LbaChecker(
            BaMappingTable(device.ba_params.buffer_bytes,
                           device.ba_params.max_entries,
                           device.ba_params.page_size)
        )
        with pytest.raises(SanitizerError) as excinfo:
            run_log_workload(platform)
        assert excinfo.value.invariant == "table.checker-split"


class TestKernelMutants:
    def test_mutant_event_scheduled_in_the_past(self):
        """Mutant: kernel-level code computes a negative delay and calls
        ``_schedule`` directly, below :class:`Timeout`'s literal validation
        -> ``kernel.past-event`` at schedule time, not at pop time."""
        engine = Engine()
        with simsan.activated():
            with pytest.raises(SanitizerError) as excinfo:
                engine._schedule(engine.event(), -1e-6)
        assert excinfo.value.invariant == "kernel.past-event"

    def test_past_event_still_rejected_without_sanitizer(self):
        """The kernel's own pop-time guard is not weakened when simsan is
        off; the sanitizer only makes the diagnosis earlier and richer."""
        from repro.sim.engine import SimulationError

        engine = Engine()
        event = engine.event()
        engine._schedule(event, -1e-6)
        event._triggered = True
        with pytest.raises(SimulationError):
            engine.run(until=event)
