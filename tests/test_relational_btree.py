"""Unit and property tests for the B-tree index and the binary codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.relational import BTree, pack_obj, unpack_obj
from repro.db.relational.codec import CodecError


class TestBTreeBasics:
    def test_insert_get(self):
        tree = BTree(min_degree=2)
        for i in range(100):
            tree.insert(i, f"v{i}")
        for i in range(100):
            assert tree.get(i) == f"v{i}"
        assert len(tree) == 100
        tree.check_invariants()

    def test_replace_does_not_grow(self):
        tree = BTree(min_degree=2)
        assert tree.insert("k", 1) is True
        assert tree.insert("k", 2) is False
        assert tree.get("k") == 2
        assert len(tree) == 1

    def test_missing_key_default(self):
        tree = BTree()
        assert tree.get("nope") is None
        assert tree.get("nope", 42) == 42
        assert "nope" not in tree

    def test_delete(self):
        tree = BTree(min_degree=2)
        for i in range(50):
            tree.insert(i, i)
        for i in range(0, 50, 2):
            assert tree.delete(i) is True
        for i in range(0, 50, 2):
            assert i not in tree
        for i in range(1, 50, 2):
            assert tree.get(i) == i
        assert tree.delete(1000) is False
        tree.check_invariants()

    def test_delete_everything(self):
        tree = BTree(min_degree=2)
        keys = list(range(200))
        for key in keys:
            tree.insert(key, key)
        import random
        random.Random(42).shuffle(keys)
        for key in keys:
            assert tree.delete(key) is True
            tree.check_invariants()
        assert len(tree) == 0

    def test_items_sorted(self):
        tree = BTree(min_degree=3)
        import random
        keys = random.Random(1).sample(range(10000), 500)
        for key in keys:
            tree.insert(key, key * 2)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_tuple_keys(self):
        tree = BTree(min_degree=2)
        tree.insert((1, 0, 5), "link-a")
        tree.insert((1, 0, 3), "link-b")
        tree.insert((2, 1, 1), "link-c")
        assert tree.get((1, 0, 3)) == "link-b"
        assert [k for k, _ in tree.items()] == [(1, 0, 3), (1, 0, 5), (2, 1, 1)]

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTree(min_degree=1)


class TestBTreeRange:
    def make_tree(self):
        tree = BTree(min_degree=2)
        for node in range(5):
            for link in range(10):
                tree.insert((node, 0, link), f"{node}-{link}")
        return tree

    def test_prefix_scan(self):
        tree = self.make_tree()
        rows = tree.range_scan((2, 0, 0), limit=100, end=(2, 1, 0))
        assert len(rows) == 10
        assert all(key[0] == 2 for key, _ in rows)

    def test_limit_respected(self):
        tree = self.make_tree()
        rows = tree.range_scan((0, 0, 0), limit=7)
        assert len(rows) == 7
        assert rows[0][0] == (0, 0, 0)

    def test_scan_from_middle(self):
        tree = self.make_tree()
        rows = tree.range_scan((2, 0, 5), limit=3)
        assert [key for key, _ in rows] == [(2, 0, 5), (2, 0, 6), (2, 0, 7)]

    def test_scan_empty_range(self):
        tree = self.make_tree()
        assert tree.range_scan((9, 0, 0), limit=10) == []


class TestBTreeProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 300), st.booleans()), max_size=300),
           st.integers(2, 5))
    def test_property_behaves_like_dict(self, ops, degree):
        tree = BTree(min_degree=degree)
        shadow: dict[int, int] = {}
        for key, do_delete in ops:
            if do_delete:
                assert tree.delete(key) == (key in shadow)
                shadow.pop(key, None)
            else:
                tree.insert(key, key * 7)
                shadow[key] = key * 7
        tree.check_invariants()
        assert len(tree) == len(shadow)
        assert dict(tree.items()) == shadow
        assert [k for k, _ in tree.items()] == sorted(shadow)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 1000), max_size=200), st.integers(0, 1000),
           st.integers(1, 50))
    def test_property_range_scan_matches_sorted_slice(self, keys, start, limit):
        tree = BTree(min_degree=3)
        for key in keys:
            tree.insert(key, key)
        expected = [k for k in sorted(keys) if k >= start][:limit]
        assert [k for k, _ in tree.range_scan(start, limit)] == expected


class TestCodec:
    CASES = [
        None, True, False, 0, -1, 2**40, "", "hello", b"", b"\x00\xff",
        (1, "a", b"b"), [1, [2, [3]]], {"k": 1, "nested": {"x": (1, 2)}},
        {"t": "put", "k": (5, 0, 7), "r": {"data": b"\x01" * 100}},
    ]

    @pytest.mark.parametrize("obj", CASES, ids=repr)
    def test_roundtrip(self, obj):
        assert unpack_obj(pack_obj(obj)) == obj

    def test_tuples_stay_tuples(self):
        assert unpack_obj(pack_obj((1, 2))) == (1, 2)
        assert isinstance(unpack_obj(pack_obj((1, 2))), tuple)
        assert isinstance(unpack_obj(pack_obj([1, 2])), list)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            pack_obj(object())

    def test_truncated_rejected(self):
        blob = pack_obj({"key": "value"})
        with pytest.raises(CodecError):
            unpack_obj(blob[:-1])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError):
            unpack_obj(pack_obj(1) + b"junk")

    @given(st.recursive(
        st.none() | st.booleans() | st.integers(-2**62, 2**62)
        | st.text(max_size=30) | st.binary(max_size=30),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20,
    ))
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, obj):
        assert unpack_obj(pack_obj(obj)) == obj
