"""Tests for the platform-wide stats collector."""

import json

from repro.observability import collect_stats, device_stats
from repro.ssd import DC_SSD
from tests.helpers import Platform

PAGE = 4096


def test_collect_stats_covers_every_layer():
    platform = Platform(seed=93)
    dc = platform.add_block_ssd(DC_SSD)
    engine, api = platform.engine, platform.api

    def workload():
        yield engine.process(dc.write(0, b"block traffic"))
        entry = yield engine.process(api.ba_pin(0, 0, 100, PAGE))
        yield engine.process(api.mmio_write(entry, 0, b"byte traffic"))
        yield engine.process(api.ba_sync(0))
        yield engine.process(api.ba_flush(0))

    engine.run_process(workload())
    report = collect_stats(platform)

    assert report["simulated_seconds"] > 0
    assert report["pcie"]["posted_writes"] > 0
    assert set(report["devices"]) == {"2B-SSD", "DC-SSD"}
    twob = report["devices"]["2B-SSD"]
    assert twob["ba_buffer"]["pins"] == 1
    assert twob["ba_buffer"]["flushes"] == 1
    assert twob["ba_buffer"]["pinned_entries"] == 0
    assert twob["nand"]["wear"]["max"] >= 0
    dc_stats = report["devices"]["DC-SSD"]
    assert dc_stats["block_io"]["writes"] == 1
    assert "ba_buffer" not in dc_stats  # plain block device


def test_report_is_json_serializable():
    platform = Platform(seed=94)
    report = collect_stats(platform)
    json.dumps(report)  # must not raise


def test_duplicate_device_names_disambiguated():
    platform = Platform(seed=95)
    platform.add_block_ssd(DC_SSD)
    platform.add_block_ssd(DC_SSD)
    report = collect_stats(platform)
    assert "DC-SSD" in report["devices"]
    assert "DC-SSD#2" in report["devices"]


def test_power_outages_counted():
    platform = Platform(seed=96)
    platform.power.power_cycle()
    assert collect_stats(platform)["power"]["outages"] == 1


def test_device_stats_waf_present():
    platform = Platform(seed=97)
    stats = device_stats(platform.device)
    assert stats["ftl"]["waf"] == 1.0
    assert stats["cache"]["capacity_pages"] > 0


def test_collect_cluster_stats_merges_pools():
    from repro.cluster import DevicePool, run_replicated_logging
    from repro.core import BaParams
    from repro.sim.units import KiB

    pool = DevicePool(devices=2, seed=98,
                      ba_params=BaParams(buffer_bytes=64 * KiB),
                      area_pages=16)
    run_replicated_logging(pool, streams=1, clients_per_stream=1,
                           records_per_client=2, replicas=2,
                           payload_bytes=128)
    report = pool.collect_stats()
    json.dumps(report)  # must not raise
    assert report["nodes"] == ["node0", "node1"]
    # Per-layer sections are keyed by node; device sections get a
    # node-name prefix so same-profile devices never collide.
    assert set(report["host"]) == {"node0", "node1"}
    assert set(report["pcie"]) == {"node0", "node1"}
    assert set(report["devices"]) == {"node0/2B-SSD", "node1/2B-SSD"}
    assert report["interconnect"]["messages"] > 0
    assert report["simulated_seconds"] > 0
