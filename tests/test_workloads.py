"""Tests for the workload generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    LinkbenchConfig,
    LinkbenchOp,
    LinkbenchWorkload,
    ScrambledZipfian,
    YcsbConfig,
    YcsbWorkload,
    ZipfianGenerator,
)
from repro.workloads.linkbench import WRITE_OPS
from repro.workloads.ycsb import YcsbOp


class TestZipfian:
    def test_values_in_range(self):
        gen = ZipfianGenerator(100, random.Random(1))
        for _ in range(2000):
            assert 0 <= gen.next() < 100

    def test_skew_favors_low_ranks(self):
        gen = ZipfianGenerator(1000, random.Random(2))
        counts = Counter(gen.next() for _ in range(20000))
        top10 = sum(counts[i] for i in range(10))
        assert top10 / 20000 > 0.3  # heavy head

    def test_determinism(self):
        a = ZipfianGenerator(50, random.Random(3))
        b = ZipfianGenerator(50, random.Random(3))
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_scrambled_spreads_hot_keys(self):
        gen = ScrambledZipfian(1000, random.Random(4))
        counts = Counter(gen.next() for _ in range(20000))
        hottest = counts.most_common(10)
        keys = [k for k, _ in hottest]
        # Hot keys are scattered, not clustered at rank 0..9.
        assert max(keys) > 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, random.Random(0))
        with pytest.raises(ValueError):
            ZipfianGenerator(10, random.Random(0), theta=1.5)

    @given(st.integers(1, 500), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_range(self, items, seed):
        gen = ZipfianGenerator(items, random.Random(seed))
        for _ in range(50):
            assert 0 <= gen.next() < items


class TestYcsb:
    def test_workload_a_mix(self):
        workload = YcsbWorkload(YcsbConfig.workload_a(), random.Random(5))
        ops = Counter(workload.next_request().op for _ in range(4000))
        read_share = ops[YcsbOp.READ] / 4000
        assert 0.45 < read_share < 0.55
        assert ops[YcsbOp.UPDATE] + ops[YcsbOp.READ] == 4000

    def test_payload_size_respected(self):
        for size in (8, 128, 1024, 4096):
            workload = YcsbWorkload(YcsbConfig.workload_a(payload_bytes=size),
                                    random.Random(6))
            request = workload.next_request()
            while request.op is not YcsbOp.UPDATE:
                request = workload.next_request()
            assert len(request.value) == size

    def test_load_phase_covers_all_records(self):
        config = YcsbConfig.workload_a(record_count=100)
        workload = YcsbWorkload(config, random.Random(7))
        loads = list(workload.load_requests())
        assert len(loads) == 100
        assert len({r.key for r in loads}) == 100
        assert all(r.op is YcsbOp.INSERT for r in loads)

    def test_invalid_proportions_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            YcsbConfig(read_proportion=0.9, update_proportion=0.9)

    def test_workload_b_read_mostly(self):
        workload = YcsbWorkload(YcsbConfig.workload_b(), random.Random(8))
        ops = Counter(workload.next_request().op for _ in range(2000))
        assert ops[YcsbOp.READ] / 2000 > 0.9


class TestLinkbench:
    def test_mix_is_about_30_percent_writes(self):
        config = LinkbenchConfig()
        # The configured mix itself.
        assert 0.25 < config.write_fraction < 0.35
        workload = LinkbenchWorkload(config, random.Random(9))
        ops = Counter(workload.next_request().op for _ in range(5000))
        writes = sum(ops[op] for op in WRITE_OPS)
        assert 0.25 < writes / 5000 < 0.36

    def test_get_link_list_dominates(self):
        workload = LinkbenchWorkload(LinkbenchConfig(), random.Random(10))
        ops = Counter(workload.next_request().op for _ in range(5000))
        assert ops[LinkbenchOp.GET_LINK_LIST] == max(ops.values())

    def test_add_node_allocates_fresh_ids(self):
        workload = LinkbenchWorkload(LinkbenchConfig(node_count=10), random.Random(11))
        seen = set()
        for _ in range(500):
            request = workload.next_request()
            if request.op is LinkbenchOp.ADD_NODE:
                assert request.node_id >= 10
                assert request.node_id not in seen
                seen.add(request.node_id)

    def test_load_phase_shape(self):
        config = LinkbenchConfig(node_count=20)
        workload = LinkbenchWorkload(config, random.Random(12))
        loads = list(workload.load_requests(links_per_node=3))
        nodes = [r for r in loads if r.op is LinkbenchOp.ADD_NODE]
        links = [r for r in loads if r.op is LinkbenchOp.ADD_LINK]
        assert len(nodes) == 20
        assert len(links) == 60

    def test_payload_sizes(self):
        config = LinkbenchConfig(node_payload_bytes=64, link_payload_bytes=32)
        workload = LinkbenchWorkload(config, random.Random(13))
        for _ in range(200):
            request = workload.next_request()
            if request.op is LinkbenchOp.ADD_NODE:
                assert len(request.payload) == 64
            elif request.op is LinkbenchOp.ADD_LINK:
                assert len(request.payload) == 32


class TestYcsbExtendedWorkloads:
    def test_workload_d_latest_distribution(self):
        workload = YcsbWorkload(YcsbConfig.workload_d(record_count=1000),
                                random.Random(20))
        # Issue some inserts + reads; reads must skew to fresh keys.
        read_indexes = []
        for _ in range(4000):
            request = workload.next_request()
            if request.op is YcsbOp.READ:
                read_indexes.append(int(request.key.removeprefix("user")))
        newest_cutoff = workload._insert_cursor - 100
        fresh_fraction = sum(i >= newest_cutoff - 100 for i in read_indexes) \
            / len(read_indexes)
        assert fresh_fraction > 0.3  # heavy recency skew

    def test_workload_e_scan_heavy(self):
        workload = YcsbWorkload(YcsbConfig.workload_e(), random.Random(21))
        ops = Counter(workload.next_request().op for _ in range(2000))
        assert ops[YcsbOp.SCAN] / 2000 > 0.9
        assert ops[YcsbOp.INSERT] > 0

    def test_workload_f_read_modify_write(self):
        workload = YcsbWorkload(YcsbConfig.workload_f(), random.Random(22))
        ops = Counter(workload.next_request().op for _ in range(2000))
        assert 0.4 < ops[YcsbOp.READ_MODIFY_WRITE] / 2000 < 0.6
        rmw = next(r for r in (workload.next_request() for _ in range(50))
                   if r.op is YcsbOp.READ_MODIFY_WRITE)
        assert rmw.value is not None

    def test_uniform_distribution(self):
        config = YcsbConfig(record_count=1000, read_proportion=1.0,
                            update_proportion=0.0, distribution="uniform")
        workload = YcsbWorkload(config, random.Random(23))
        counts = Counter(int(workload.next_request().key.removeprefix("user"))
                         for _ in range(5000))
        # No single key dominates under uniform selection.
        assert counts.most_common(1)[0][1] < 30

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            YcsbConfig(distribution="martian")

    def test_rmw_runs_on_lsm_driver(self):
        from repro.bench.drivers import run_ycsb_on_lsm
        from repro.db.lsm import LSMTree, MemoryTableStorage
        from repro.ssd import ULL_SSD
        from repro.wal import BlockWAL
        from tests.helpers import Platform

        platform = Platform(seed=24)
        device = platform.add_block_ssd(ULL_SSD)
        wal = BlockWAL(platform.engine, device, platform.cpu, area_pages=4096)
        tree = LSMTree(platform.engine, wal, MemoryTableStorage(platform.engine))
        workload = YcsbWorkload(YcsbConfig.workload_f(record_count=50),
                                random.Random(25))
        result = run_ycsb_on_lsm(platform.engine, tree, workload, 100, clients=2)
        assert result.operations == 100
