"""Tests for the command-line interface."""

import contextlib
import io

import pytest

from repro.cli import main


def run_cli(*argv) -> str:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(list(argv))
    assert code == 0
    return buffer.getvalue()


class TestCli:
    def test_list(self):
        output = run_cli("list")
        for command in ("table1", "fig7", "fig8", "fig9", "fig10", "ablations"):
            assert command in output

    def test_no_args_lists(self):
        assert "available experiments" in run_cli()

    def test_table1(self):
        output = run_cli("table1")
        assert "8 MiB" in output
        assert "PCIe Gen.3 x4" in output

    def test_fig7(self):
        output = run_cli("fig7")
        assert "read latency" in output
        assert "2B-SSD MMIO write" in output

    def test_fig10_quick(self):
        output = run_cli("fig10", "--quick")
        assert "normalized" in output
        assert "PM + DC-SSD" in output

    def test_cluster(self):
        output = run_cli("cluster", "--devices", "2", "--streams", "2",
                         "--clients", "1", "--records", "8")
        assert "Cluster run: 2 devices, RF=2" in output
        assert "records acked" in output
        assert "cluster.quorum_wait" in output

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            run_cli("figure-nine")

    def test_report_writes_markdown(self, tmp_path):
        output = tmp_path / "report.md"
        run_cli("report", "--quick", "--output", str(output))
        text = output.read_text()
        assert text.startswith("# 2B-SSD reproduction report")
        for section in ("## Table I", "## Fig. 7", "## Fig. 8", "## Fig. 9",
                        "## Fig. 10", "## Ablations"):
            assert section in text


class TestPerfExitCode:
    """``repro perf`` must be a usable CI gate: exit 0 iff targets pass."""

    @staticmethod
    def _payload(passed: bool) -> dict:
        from repro.bench import wallclock

        return {
            "schema": wallclock.SCHEMA,
            "baseline": dict(wallclock.BASELINE),
            "targets": dict(wallclock.TARGETS),
            "results": {
                "microbench": {
                    "iters_per_sec": 1.0,
                    "events_per_sec": 8.0,
                    "baseline_iters_per_sec": 1.0,
                    "baseline_events_per_sec": 8.0,
                    "speedup_vs_baseline": 1.0,
                },
            },
            "pass": passed,
        }

    def _run_perf(self, monkeypatch, tmp_path, passed: bool) -> int:
        from repro.bench import wallclock

        monkeypatch.setattr(
            wallclock, "run_harness",
            lambda skip_figs=False, jobs=4, snapshot_cache=None:
                self._payload(passed))
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            return main(["perf", "--skip-figs",
                         "--output", str(tmp_path / "BENCH.json")])

    def test_perf_exits_zero_when_targets_met(self, monkeypatch, tmp_path):
        assert self._run_perf(monkeypatch, tmp_path, passed=True) == 0

    def test_perf_exits_nonzero_when_targets_missed(self, monkeypatch, tmp_path):
        assert self._run_perf(monkeypatch, tmp_path, passed=False) == 1
