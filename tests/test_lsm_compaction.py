"""Die-parallel LSM compaction: bloom-guided merge, batched SST I/O,
sanitizer-clean compaction, and the shared stalled-write fallback batch.

The merge tests pin ``merge_tables`` against a naive newest-wins
reference; the storage tests check the single-fsync barrier contract of
``write_tables``; the FTL tests drive twin engines (batched submit vs
per-page ``write``) through a foreground-GC stall storm and require
exact simulated-time equality.
"""

import random

import pytest

from repro.analysis import sanitizer as simsan
from repro.db.lsm import DeviceTableStorage, LSMTree, MemoryTableStorage, SSTable
from repro.db.lsm.bloom import BloomFilter
from repro.db.lsm.sst import merge_tables
from repro.db.lsm.storage import StorageError
from repro.ftl import PageMapFTL
from repro.nand import FlashArray, NandGeometry, NandTiming
from repro.sim import Engine, RngStreams
from repro.sim.units import USEC
from repro.ssd import ULL_SSD
from repro.wal import BlockWAL
from tests.helpers import Platform, small_ba_params

FAST_NAND = NandTiming("fast", 1 * USEC, 2 * USEC, 10 * USEC,
                       jitter_fraction=0.0, endurance_cycles=10**9)


def reference_merge(tables, drop_tombstones):
    """Oldest-to-newest dict merge: the obviously-correct semantics."""
    merged = {}
    for table in reversed(tables):  # tables are newest first
        merged.update(table.items())
    if drop_tombstones:
        merged = {k: v for k, v in merged.items() if v is not None}
    return merged


def random_stack(seed, ntables=5, keyspace=60, per_table=25):
    rng = random.Random(seed)
    tables = []
    for _ in range(ntables):
        keys = sorted(rng.sample(range(keyspace), per_table))
        entries = [
            (f"k{key:04d}",
             None if rng.random() < 0.2 else bytes([key]) * rng.randint(1, 8))
            for key in keys
        ]
        tables.append(SSTable(entries))
    return tables  # newest first by convention


class TestBloomGuidedMerge:
    @pytest.mark.parametrize("drop", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_reference_merge(self, seed, drop):
        tables = random_stack(seed)
        expected = reference_merge(tables, drop)
        merged = merge_tables(tables, drop_tombstones=drop)
        if not expected:
            assert merged is None
        else:
            assert dict(merged.items()) == expected

    def test_stats_account_probes_and_skips(self):
        # Two disjoint key ranges: every older entry misses the newer
        # run's filter (modulo bloom false positives), so nearly all of
        # the older table's entries are filter skips.
        new = SSTable([(f"a{i:03d}", b"n") for i in range(40)])
        old = SSTable([(f"z{i:03d}", b"o") for i in range(40)])
        stats = {}
        merged = merge_tables([new, old], drop_tombstones=False, stats=stats)
        assert stats["filter_probes"] == 40  # only older-run entries probe
        assert 0 < stats["filter_skips"] <= stats["filter_probes"]
        assert len(merged.items()) == 80

    def test_fully_shadowed_old_run_yields_no_skips_in_result(self):
        new = SSTable([(f"k{i:03d}", b"new") for i in range(30)])
        old = SSTable([(f"k{i:03d}", b"old") for i in range(30)])
        stats = {}
        merged = merge_tables([new, old], drop_tombstones=False, stats=stats)
        assert stats["filter_skips"] == 0  # every key hits the newer filter
        assert all(value == b"new" for _k, value in merged.items())

    def test_stats_accumulate_across_calls(self):
        new = SSTable([("a", b"1")])
        old = SSTable([("b", b"2")])
        stats = {}
        merge_tables([new, old], drop_tombstones=False, stats=stats)
        first = stats["filter_probes"]
        merge_tables([new, old], drop_tombstones=False, stats=stats)
        assert stats["filter_probes"] == 2 * first

    def test_hashed_probe_matches_unhashed(self):
        keys = [f"key{i}" for i in range(50)]
        bloom = BloomFilter(keys[:25])
        for key in keys:
            h1, h2 = BloomFilter.hash_key(key)
            assert bloom.might_contain_hashed(h1, h2) == bloom.might_contain(key)

    def test_from_sorted_equivalent_to_constructor(self):
        entries = [("a", b"1"), ("b", None), ("c", b"3")]
        assert SSTable.from_sorted(entries).encode() == SSTable(entries).encode()
        with pytest.raises(ValueError, match="at least one"):
            SSTable.from_sorted([])


def make_device_storage():
    platform = Platform(ba_params=small_ba_params(64))
    device = platform.add_block_ssd(ULL_SSD)
    return platform, device, DeviceTableStorage(platform.engine, device)


class TestBatchedTableStorage:
    def test_write_tables_single_fsync_and_roundtrip(self):
        platform, device, storage = make_device_storage()
        engine = platform.engine
        fsyncs = []
        real_fsync = device.fsync
        device.fsync = lambda: (fsyncs.append(1), real_fsync())[1]
        blobs = [(7, b"table-seven" * 40), (3, b"table-three" * 90),
                 (11, b"table-eleven" * 10)]
        engine.run_process(storage.write_tables(blobs))
        assert len(fsyncs) == 1  # one barrier for the whole batch
        assert sorted(storage.table_ids()) == [3, 7, 11]
        # read_tables returns blobs in request order (page-padded, like
        # read_table always has).
        out = engine.run_process(storage.read_tables([11, 7, 3]))
        for got, (_fid, want) in zip(out, [blobs[2], blobs[0], blobs[1]]):
            assert got[:len(want)] == want
            assert got[len(want):] == bytes(len(got) - len(want))

    def test_write_tables_is_time_concurrent(self):
        # Batched writes overlap across the device: the batch must finish
        # faster than the same tables written-and-fsynced one at a time.
        blob = bytes(range(256)) * 64  # 16 KiB -> several pages each
        platform_a, _dev_a, storage_a = make_device_storage()
        platform_a.engine.run_process(
            storage_a.write_tables([(i, blob) for i in range(6)]))
        batched_time = platform_a.engine.now

        platform_b, _dev_b, storage_b = make_device_storage()

        def sequential():
            for i in range(6):
                yield platform_b.engine.process(storage_b.write_table(i, blob))

        platform_b.engine.run_process(sequential())
        assert batched_time < platform_b.engine.now

    def test_read_tables_empty_and_unknown(self):
        platform, _device, storage = make_device_storage()
        assert platform.engine.run_process(storage.read_tables([])) == []
        with pytest.raises(StorageError):
            platform.engine.run_process(storage.read_tables([99]))

    def test_memory_storage_batch_roundtrip(self):
        platform = Platform(ba_params=small_ba_params(64))
        storage = MemoryTableStorage(platform.engine)
        platform.engine.run_process(
            storage.write_tables([(1, b"one"), (2, b"two")]))
        assert platform.engine.run_process(storage.read_tables([2, 1])) == \
            [b"two", b"one"]


def make_device_lsm(memtable_bytes=1024):
    platform = Platform(ba_params=small_ba_params(64))
    log_device = platform.add_block_ssd(ULL_SSD)
    wal = BlockWAL(platform.engine, log_device, platform.cpu, area_pages=4096)
    data_device = platform.add_block_ssd(ULL_SSD, seed=13)
    storage = DeviceTableStorage(platform.engine, data_device)
    tree = LSMTree(platform.engine, wal, storage,
                   memtable_bytes=memtable_bytes, rng=RngStreams(3))
    return platform, tree


class TestCompactionCorrectness:
    def drive(self, platform, tree, ops=520, keyspace=96):
        engine = platform.engine
        expected = {}

        def scenario():
            for i in range(ops):
                slot = i % keyspace
                key = f"k{slot:04d}"
                if slot % 16 == 15 and i >= keyspace:
                    expected.pop(key, None)
                    yield engine.process(tree.delete(key))
                else:
                    value = bytes([i & 0xFF]) * 48
                    expected[key] = value
                    yield engine.process(tree.put(key, value))

        engine.run_process(scenario())
        return expected

    def test_compaction_is_sanitizer_clean(self):
        with simsan.activated() as state:
            platform, tree = make_device_lsm()
            expected = self.drive(platform, tree)
            assert tree.compaction_count >= 1
            assert tree.compaction_bytes > 0
            assert tree.compaction_seconds > 0.0
            engine = platform.engine
            for key, value in expected.items():
                assert engine.run_process(tree.get(key)) == value
            assert engine.run_process(tree.get("k0015")) is None
            assert state.checks > 0
            assert state.violations == 0

    def test_compaction_timing_is_deterministic(self):
        def run():
            # File ids land in the manifest, whose byte length shapes
            # write timing — pin the global counter per run, like the
            # compaction bench leg does.
            SSTable._COUNTER = 0
            platform, tree = make_device_lsm()
            self.drive(platform, tree)
            return (platform.engine.now, tree.compaction_count,
                    tree.compaction_seconds, tree.compaction_filter_skips)

        assert run() == run()

    def test_recover_after_compaction_round_trips(self):
        platform, tree = make_device_lsm()
        expected = self.drive(platform, tree)
        engine = platform.engine
        twin = LSMTree(engine, tree.wal, tree.storage,
                       memtable_bytes=2048, rng=RngStreams(3))
        engine.run_process(twin.recover())
        for key, value in expected.items():
            assert engine.run_process(twin.get(key)) == value


def make_ftl(seed=3):
    engine = Engine()
    geometry = NandGeometry(channels=1, dies_per_channel=1, blocks_per_die=8,
                            pages_per_block=4, page_size=64)
    flash = FlashArray(engine, geometry, FAST_NAND, RngStreams(seed))
    return engine, PageMapFTL(engine, flash, overprovision=0.25)


def payload(i):
    return bytes([i % 251]) * 8


class TestStalledWriteFallbackBatch:
    ROUNDS = 30
    BURST = 8

    def drive_per_page(self):
        engine, ftl = make_ftl()
        times = []

        def scenario():
            op = 0
            for _ in range(self.ROUNDS):
                procs = []
                for _ in range(self.BURST):
                    procs.append(engine.process(ftl.write(op % 6, payload(op))))
                    op += 1
                yield engine.all_of(procs)
                times.append(engine.now)

        engine.run_process(scenario())
        return engine, ftl, times

    def drive_submit(self):
        engine, ftl = make_ftl()
        times = []
        fallback_batches = set()

        def scenario():
            batch = ftl.flash.program_batch()
            op = 0
            for _ in range(self.ROUNDS):
                waits = []
                for _ in range(self.BURST):
                    done = engine.event()
                    proc = ftl.write_submit(
                        op % 6, payload(op), batch,
                        on_done=lambda _t, ev=done: ev._succeed_processed())
                    waits.append(proc if proc is not None else done)
                    if ftl._fallback_batch is not None:
                        fallback_batches.add(id(ftl._fallback_batch))
                    op += 1
                yield engine.all_of(waits)
                times.append(engine.now)
            yield from batch.drain()

        engine.run_process(scenario())
        return engine, ftl, times, fallback_batches

    def test_stall_storm_matches_per_page_write_times(self):
        engine_a, ftl_a, times_a = self.drive_per_page()
        engine_b, ftl_b, times_b, batches = self.drive_submit()
        # The storm genuinely stalls (burst arrival under the low
        # watermark), and both paths see the same stall count.
        assert ftl_a.stats.foreground_gc_stalls > 0
        assert ftl_a.stats.foreground_gc_stalls == ftl_b.stats.foreground_gc_stalls
        assert times_a == times_b  # exact simulated-time equality
        assert engine_a.now == engine_b.now
        ftl_b.check_consistency()

    def test_fallback_batch_is_shared_across_stalls(self):
        _engine, ftl, _times, batches = self.drive_submit()
        assert ftl.stats.foreground_gc_stalls > 1
        assert len(batches) == 1  # one primed batch served every stall

    def test_reboot_drops_fallback_batch(self):
        engine, ftl, _times, _batches = self.drive_submit()
        assert ftl._fallback_batch is not None
        ftl.reboot()
        assert ftl._fallback_batch is None
