"""Regression tests: LBA-checker behaviour exactly at pin-range boundaries.

A pin covers NAND pages [4, 8).  Block writes touching any page of that
range — including exactly the first and last — must be gated; writes
ending at the first page or starting one-past-the-end must pass.  Block
reads are never gated: they return the (stale-by-design) NAND state
until BA_FLUSH publishes the buffer (§III-A2).
"""

from typing import Iterator

import pytest

from repro.core.errors import GatedLbaError
from repro.platform import Platform

PAGE = 4096
FIRST = 4          # first pinned page
LAST = 7           # last pinned page
ONE_PAST = 8       # first page after the range

OLD = b"\x11" * (4 * PAGE)   # NAND contents before the pin
NEW = b"\xbb" * (4 * PAGE)   # bytes MMIO-written into the BA-buffer


@pytest.fixture()
def pinned():
    """A platform with pattern OLD on pages [4, 8), then that range pinned
    and overwritten with NEW via the byte path (unflushed)."""
    platform = Platform(seed=32)
    engine, api, device = platform.engine, platform.api, platform.device

    def setup() -> Iterator:
        yield engine.process(device.write(FIRST, OLD))
        yield engine.process(device.drain())
        entry = yield engine.process(api.ba_pin(0, 0, FIRST, 4 * PAGE))
        yield engine.process(api.mmio_write(entry, 0, NEW))
        yield engine.process(api.ba_sync(0))
        return None

    engine.run_process(setup())
    return platform


class TestWriteGating:
    def test_write_to_first_pinned_lba_rejected(self, pinned):
        with pytest.raises(GatedLbaError):
            pinned.engine.run_process(pinned.device.write(FIRST, bytes(PAGE)))

    def test_write_to_last_pinned_lba_rejected(self, pinned):
        with pytest.raises(GatedLbaError):
            pinned.engine.run_process(pinned.device.write(LAST, bytes(PAGE)))

    def test_write_spanning_into_range_rejected(self, pinned):
        # Starts below the range but overlaps its first page.
        with pytest.raises(GatedLbaError):
            pinned.engine.run_process(
                pinned.device.write(FIRST - 1, bytes(2 * PAGE)))

    def test_write_spanning_out_of_range_rejected(self, pinned):
        # Starts on the last page and runs past the end.
        with pytest.raises(GatedLbaError):
            pinned.engine.run_process(
                pinned.device.write(LAST, bytes(2 * PAGE)))

    def test_write_ending_at_range_start_allowed(self, pinned):
        # Pages [2, 4) touch nothing pinned: [lo, hi) ranges are half-open.
        pinned.engine.run_process(
            pinned.device.write(FIRST - 2, bytes(2 * PAGE)))

    def test_write_at_one_past_end_allowed(self, pinned):
        pinned.engine.run_process(pinned.device.write(ONE_PAST, bytes(PAGE)))

    def test_gated_writes_are_counted_and_change_nothing(self, pinned):
        gate = pinned.device.lba_gate
        before_checks, before_gated = gate.stats.checks, gate.stats.gated
        for lpn in (FIRST, LAST):
            with pytest.raises(GatedLbaError):
                pinned.engine.run_process(pinned.device.write(lpn, bytes(PAGE)))
        assert gate.stats.gated == before_gated + 2
        assert gate.stats.checks == before_checks + 2
        # The gated writes must not have reached NAND or the cache.
        data = pinned.engine.run_process(pinned.device.read(FIRST, 4 * PAGE))
        assert data == OLD


class TestReadRedirection:
    def test_reads_at_boundaries_return_stale_nand(self, pinned):
        engine, device = pinned.engine, pinned.device
        # The byte path holds NEW, but block reads of the pinned range —
        # first page, last page, and the whole range — still see OLD.
        assert engine.run_process(device.read(FIRST, PAGE)) == OLD[:PAGE]
        assert engine.run_process(device.read(LAST, PAGE)) == OLD[-PAGE:]
        assert engine.run_process(device.read(FIRST, 4 * PAGE)) == OLD

    def test_read_one_past_end_unaffected(self, pinned):
        data = pinned.engine.run_process(pinned.device.read(ONE_PAST, PAGE))
        assert data == bytes(PAGE)

    def test_flush_publishes_buffer_and_ungates(self, pinned):
        engine, api, device = pinned.engine, pinned.api, pinned.device

        def flush_and_check() -> Iterator:
            yield engine.process(api.ba_flush(0))
            after = yield engine.process(device.read(FIRST, 4 * PAGE))
            return after

        assert engine.run_process(flush_and_check()) == NEW
        # With the pin gone, boundary writes are allowed again.
        engine.run_process(device.write(FIRST, bytes(PAGE)))
        engine.run_process(device.write(LAST, bytes(PAGE)))
