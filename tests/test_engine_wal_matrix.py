"""The engine x WAL-backend compatibility matrix.

Every database engine must run — and recover — on every WAL backend.
This is the reproduction's expression of the paper's porting claim: the
logging scheme is swappable beneath unmodified engine logic.
"""

import pytest

from repro.db.lsm import LSMTree, MemoryTableStorage
from repro.db.memkv import MemKV
from repro.db.relational import RelationalEngine
from repro.sim import RngStreams
from repro.ssd import ULL_SSD
from repro.wal import BaWAL, BlockWAL, CommitMode, PmWAL
from tests.helpers import Platform, small_ba_params

WAL_KINDS = ("block-sync", "block-async", "ba", "pm")
ENGINES = ("relational", "lsm", "memkv")


def make_wal(platform, kind):
    if kind.startswith("block"):
        device = platform.add_block_ssd(ULL_SSD)
        mode = (CommitMode.ASYNCHRONOUS if kind.endswith("async")
                else CommitMode.SYNCHRONOUS)
        return BlockWAL(platform.engine, device, platform.cpu, mode=mode,
                        area_pages=8192)
    if kind == "ba":
        wal = BaWAL(platform.engine, platform.api, area_pages=8192)
        platform.engine.run_process(wal.start())
        return wal
    device = platform.add_block_ssd(ULL_SSD)
    return PmWAL(platform.engine, device, platform.cpu, pm_bytes=64 * 1024,
                 area_pages=8192)


def make_engine(platform, engine_kind, wal):
    if engine_kind == "relational":
        db = RelationalEngine(platform.engine, wal)
        db.create_table("t")
        return db
    if engine_kind == "lsm":
        return LSMTree(platform.engine, wal, MemoryTableStorage(platform.engine),
                       memtable_bytes=8192, rng=RngStreams(17))
    return MemKV(platform.engine, wal)


def run_workload(platform, engine_kind, db, count=25):
    engine = platform.engine

    def workload():
        for i in range(count):
            if engine_kind == "relational":
                txn = db.begin()
                yield engine.process(db.insert(txn, "t", i, {"v": i}))
                yield engine.process(db.commit(txn))
            elif engine_kind == "lsm":
                yield engine.process(db.put(f"k{i:03d}", bytes([i])))
            else:
                yield engine.process(db.set(f"k{i:03d}", bytes([i])))

    engine.run_process(workload())


def verify_state(platform, engine_kind, db, count=25):
    engine = platform.engine

    def check():
        for i in range(count):
            if engine_kind == "relational":
                row = yield engine.process(db.get("t", i))
                assert row == {"v": i}, i
            elif engine_kind == "lsm":
                value = yield engine.process(db.get(f"k{i:03d}"))
                assert value == bytes([i]), i
            else:
                value = yield engine.process(db.get(f"k{i:03d}"))
                assert value == bytes([i]), i

    engine.run_process(check())


@pytest.mark.parametrize("engine_kind", ENGINES)
@pytest.mark.parametrize("wal_kind", WAL_KINDS)
def test_engine_runs_on_backend(engine_kind, wal_kind):
    platform = Platform(ba_params=small_ba_params(64), seed=82)
    wal = make_wal(platform, wal_kind)
    db = make_engine(platform, engine_kind, wal)
    run_workload(platform, engine_kind, db)
    verify_state(platform, engine_kind, db)


@pytest.mark.parametrize("engine_kind", ENGINES)
@pytest.mark.parametrize("wal_kind", ["block-sync", "ba", "pm"])
def test_engine_recovers_on_durable_backend(engine_kind, wal_kind):
    """Crash after the workload; recovery restores every committed write
    on every backend with a durable commit path."""
    platform = Platform(ba_params=small_ba_params(64), seed=83)
    wal = make_wal(platform, wal_kind)
    db = make_engine(platform, engine_kind, wal)
    run_workload(platform, engine_kind, db)
    platform.power.power_cycle()

    fresh = make_engine(platform, engine_kind, wal)
    engine = platform.engine
    if engine_kind == "relational":
        engine.run_process(fresh.recover())
    elif engine_kind == "lsm":
        engine.run_process(fresh.recover())
    else:
        engine.run_process(fresh.recover())
    verify_state(platform, engine_kind, fresh)
