"""Tests for the relational engine: transactions, locking, recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.relational import RelationalEngine, TransactionError
from repro.ssd import ULL_SSD
from repro.wal import BaWAL, BlockWAL, CommitMode
from tests.helpers import Platform, small_ba_params


def make_engine(wal_kind="block", mode=CommitMode.SYNCHRONOUS):
    platform = Platform(ba_params=small_ba_params(64))
    if wal_kind == "block":
        device = platform.add_block_ssd(ULL_SSD)
        wal = BlockWAL(platform.engine, device, platform.cpu, mode=mode,
                       area_pages=8192)
    else:
        wal = BaWAL(platform.engine, platform.api, area_pages=8192)
        platform.engine.run_process(wal.start())
    db = RelationalEngine(platform.engine, wal)
    db.create_table("node")
    db.create_table("link")
    return platform, db


class TestTransactions:
    def test_insert_commit_get(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            txn = db.begin()
            yield engine.process(db.insert(txn, "node", 1, {"data": b"hello"}))
            yield engine.process(db.commit(txn))
            return (yield engine.process(db.get("node", 1)))

        assert engine.run_process(scenario()) == {"data": b"hello"}

    def test_abort_rolls_back(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            setup = db.begin()
            yield engine.process(db.insert(setup, "node", 1, {"v": 1}))
            yield engine.process(db.commit(setup))
            txn = db.begin()
            yield engine.process(db.update(txn, "node", 1, {"v": 2}))
            yield engine.process(db.insert(txn, "node", 2, {"v": 3}))
            yield engine.process(db.abort(txn))
            first = yield engine.process(db.get("node", 1))
            second = yield engine.process(db.get("node", 2))
            return first, second

        first, second = engine.run_process(scenario())
        assert first == {"v": 1}
        assert second is None
        assert db.stats.aborts == 1

    def test_finished_transaction_rejected(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            txn = db.begin()
            yield engine.process(db.insert(txn, "node", 1, {}))
            yield engine.process(db.commit(txn))
            yield engine.process(db.insert(txn, "node", 2, {}))

        with pytest.raises(TransactionError):
            engine.run_process(scenario())

    def test_delete_row(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            txn = db.begin()
            yield engine.process(db.insert(txn, "node", 5, {"d": b"x"}))
            yield engine.process(db.commit(txn))
            txn2 = db.begin()
            yield engine.process(db.delete(txn2, "node", 5))
            yield engine.process(db.commit(txn2))
            return (yield engine.process(db.get("node", 5)))

        assert engine.run_process(scenario()) is None

    def test_write_locks_serialize_conflicting_txns(self):
        platform, db = make_engine()
        engine = platform.engine
        order = []

        def writer(tag, value):
            txn = db.begin()
            yield engine.process(db.update(txn, "node", 1, {"v": value}))
            order.append(tag)
            yield engine.process(db.commit(txn))

        def scenario():
            procs = [engine.process(writer("a", 1)), engine.process(writer("b", 2))]
            yield engine.all_of(procs)
            return (yield engine.process(db.get("node", 1)))

        row = engine.run_process(scenario())
        assert order == ["a", "b"]
        assert row == {"v": 2}

    def test_unknown_table_rejected(self):
        platform, db = make_engine()
        with pytest.raises(ValueError, match="no such table"):
            platform.engine.run_process(db.get("ghost", 1))

    def test_range_scan_prefix(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            txn = db.begin()
            for node in (1, 2):
                for other in range(5):
                    yield engine.process(db.insert(
                        txn, "link", (node, 0, other), {"p": b"x"}))
            yield engine.process(db.commit(txn))
            return (yield engine.process(
                db.range_scan("link", (1, 0, 0), limit=10, end_key=(1, 1, 0))
            ))

        rows = engine.run_process(scenario())
        assert [key for key, _ in rows] == [(1, 0, i) for i in range(5)]


class TestRecovery:
    def test_committed_txns_survive_crash(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            for i in range(10):
                txn = db.begin()
                yield engine.process(db.insert(txn, "node", i, {"n": i}))
                yield engine.process(db.commit(txn))

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = RelationalEngine(engine, db.wal)
        fresh.create_table("node")
        fresh.create_table("link")

        def recovery():
            replayed = yield engine.process(fresh.recover())
            rows = []
            for i in range(10):
                rows.append((yield engine.process(fresh.get("node", i))))
            return replayed, rows

        replayed, rows = engine.run_process(recovery())
        assert replayed == 10
        assert rows == [{"n": i} for i in range(10)]

    def test_uncommitted_txn_discarded_on_recovery(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            committed = db.begin()
            yield engine.process(db.insert(committed, "node", 1, {"ok": True}))
            yield engine.process(db.commit(committed))
            dangling = db.begin()
            yield engine.process(db.insert(dangling, "node", 2, {"ok": False}))
            # crash before commit

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = RelationalEngine(engine, db.wal)
        fresh.create_table("node")

        def recovery():
            yield engine.process(fresh.recover())
            one = yield engine.process(fresh.get("node", 1))
            two = yield engine.process(fresh.get("node", 2))
            return one, two

        one, two = engine.run_process(recovery())
        assert one == {"ok": True}
        assert two is None

    def test_aborted_txn_not_replayed(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            txn = db.begin()
            yield engine.process(db.insert(txn, "node", 9, {"bad": True}))
            yield engine.process(db.abort(txn))
            good = db.begin()
            yield engine.process(db.insert(good, "node", 10, {"good": True}))
            yield engine.process(db.commit(good))

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = RelationalEngine(engine, db.wal)
        fresh.create_table("node")

        def recovery():
            yield engine.process(fresh.recover())
            return (
                (yield engine.process(fresh.get("node", 9))),
                (yield engine.process(fresh.get("node", 10))),
            )

        nine, ten = engine.run_process(recovery())
        assert nine is None
        assert ten == {"good": True}

    def test_recovery_with_ba_wal(self):
        platform, db = make_engine(wal_kind="ba")
        engine = platform.engine

        def scenario():
            for i in range(15):
                txn = db.begin()
                yield engine.process(db.insert(txn, "node", i, {"d": bytes([i]) * 40}))
                yield engine.process(db.commit(txn))

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = RelationalEngine(engine, db.wal)
        fresh.create_table("node")
        fresh.create_table("link")

        def recovery():
            yield engine.process(fresh.recover())
            rows = []
            for i in range(15):
                rows.append((yield engine.process(fresh.get("node", i))))
            return rows

        rows = engine.run_process(recovery())
        assert rows == [{"d": bytes([i]) * 40} for i in range(15)]

    def test_checkpoint_image_roundtrip(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            txn = db.begin()
            yield engine.process(db.insert(txn, "node", 1, {"x": b"snap"}))
            yield engine.process(db.insert(txn, "link", (1, 0, 2), {"y": 7}))
            yield engine.process(db.commit(txn))

        engine.run_process(scenario())
        image = db.checkpoint_image()
        fresh = RelationalEngine(engine, db.wal)
        fresh.load_checkpoint(image)
        assert fresh.row_count("node") == 1
        assert fresh.row_count("link") == 1

        def check():
            return (yield engine.process(fresh.get("link", (1, 0, 2))))

        assert engine.run_process(check()) == {"y": 7}

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 8),
                              st.one_of(st.none(), st.binary(max_size=30)),
                              st.booleans()),
                    min_size=1, max_size=30))
    def test_property_recovery_matches_committed_state(self, ops):
        platform, db = make_engine()
        engine = platform.engine
        shadow: dict[int, dict] = {}

        def scenario():
            for key, value, do_commit in ops:
                txn = db.begin()
                if value is None:
                    yield engine.process(db.delete(txn, "node", key))
                else:
                    yield engine.process(db.insert(txn, "node", key, {"v": value}))
                if do_commit:
                    yield engine.process(db.commit(txn))
                    if value is None:
                        shadow.pop(key, None)
                    else:
                        shadow[key] = {"v": value}
                else:
                    yield engine.process(db.abort(txn))

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = RelationalEngine(engine, db.wal)
        fresh.create_table("node")

        def recovery():
            yield engine.process(fresh.recover())
            result = {}
            for key in range(9):
                row = yield engine.process(fresh.get("node", key))
                if row is not None:
                    result[key] = row
            return result

        assert engine.run_process(recovery()) == shadow


class TestReadCommitted:
    def test_reader_sees_before_image_of_uncommitted_write(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            setup = db.begin()
            yield engine.process(db.insert(setup, "node", 1, {"v": "old"}))
            yield engine.process(db.commit(setup))
            writer = db.begin()
            yield engine.process(db.update(writer, "node", 1, {"v": "new"}))
            # Another session reads while the writer is still open.
            seen = yield engine.process(db.get("node", 1))
            own = yield engine.process(db.get("node", 1, txn=writer))
            yield engine.process(db.commit(writer))
            after = yield engine.process(db.get("node", 1))
            return seen, own, after

        seen, own, after = engine.run_process(scenario())
        assert seen == {"v": "old"}     # READ COMMITTED
        assert own == {"v": "new"}      # own writes visible
        assert after == {"v": "new"}    # visible once committed

    def test_uncommitted_insert_invisible(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            writer = db.begin()
            yield engine.process(db.insert(writer, "node", 9, {"v": 1}))
            invisible = yield engine.process(db.get("node", 9))
            yield engine.process(db.abort(writer))
            gone = yield engine.process(db.get("node", 9))
            return invisible, gone

        invisible, gone = engine.run_process(scenario())
        assert invisible is None
        assert gone is None

    def test_uncommitted_delete_still_visible_to_others(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            setup = db.begin()
            yield engine.process(db.insert(setup, "node", 5, {"v": "live"}))
            yield engine.process(db.commit(setup))
            deleter = db.begin()
            yield engine.process(db.delete(deleter, "node", 5))
            seen = yield engine.process(db.get("node", 5))
            yield engine.process(db.commit(deleter))
            after = yield engine.process(db.get("node", 5))
            return seen, after

        seen, after = engine.run_process(scenario())
        assert seen == {"v": "live"}
        assert after is None

    def test_scan_skips_uncommitted_inserts(self):
        platform, db = make_engine()
        engine = platform.engine

        def scenario():
            setup = db.begin()
            for i in (1, 3):
                yield engine.process(db.insert(setup, "node", i, {"v": i}))
            yield engine.process(db.commit(setup))
            writer = db.begin()
            yield engine.process(db.insert(writer, "node", 2, {"v": 2}))
            rows = yield engine.process(db.range_scan("node", 0, limit=10))
            yield engine.process(db.commit(writer))
            rows_after = yield engine.process(db.range_scan("node", 0, limit=10))
            return [k for k, _ in rows], [k for k, _ in rows_after]

        before, after = engine.run_process(scenario())
        assert before == [1, 3]
        assert after == [1, 2, 3]

    def test_sql_update_sees_own_prior_update(self):
        from repro.db.relational import SqlSession
        platform, db = make_engine()
        session = SqlSession(db)
        engine = platform.engine

        def script():
            for statement in (
                "CREATE TABLE t2",
                "INSERT INTO t2 (id, a, b) VALUES (1, 0, 0)",
                "BEGIN",
                "UPDATE t2 SET a = 1 WHERE id = 1",
                "UPDATE t2 SET b = 2 WHERE id = 1",
                "COMMIT",
            ):
                yield engine.process(session.execute(statement))
            return (yield engine.process(session.execute(
                "SELECT a, b FROM t2 WHERE id = 1")))

        rows = engine.run_process(script())
        assert rows == [{"a": 1, "b": 2}]
