"""Tests for relational checkpointing and bounded-log recovery."""

import pytest

from repro.db.relational import RelationalEngine
from repro.db.relational.checkpoint import (
    CheckpointError,
    CheckpointStore,
    checkpoint_and_truncate,
    recover_from_checkpoint,
)
from repro.ssd import ULL_SSD
from repro.wal import BaWAL, BlockWAL
from tests.helpers import Platform, small_ba_params


def make_db(wal_kind="block"):
    platform = Platform(ba_params=small_ba_params(64), seed=85)
    if wal_kind == "block":
        log_device = platform.add_block_ssd(ULL_SSD)
        wal = BlockWAL(platform.engine, log_device, platform.cpu,
                       area_pages=8192)
    else:
        wal = BaWAL(platform.engine, platform.api, area_pages=8192)
        platform.engine.run_process(wal.start())
    data_device = platform.add_block_ssd(ULL_SSD)
    store = CheckpointStore(platform.engine, data_device, base_lpn=0)
    db = RelationalEngine(platform.engine, wal)
    db.create_table("t")
    return platform, db, store


def insert_rows(platform, db, start, count):
    engine = platform.engine

    def workload():
        for i in range(start, start + count):
            txn = db.begin()
            yield engine.process(db.insert(txn, "t", i, {"v": i}))
            yield engine.process(db.commit(txn))

    engine.run_process(workload())


class TestCheckpointStore:
    def test_save_load_roundtrip(self):
        platform, db, store = make_db()
        insert_rows(platform, db, 0, 10)
        engine = platform.engine
        engine.run_process(checkpoint_and_truncate(engine, db, store))
        loaded = engine.run_process(store.load_latest())
        assert loaded is not None
        wal_lsn, blob = loaded
        assert wal_lsn > 0
        fresh = RelationalEngine(engine, db.wal)
        fresh.load_checkpoint(blob)
        assert fresh.row_count("t") == 10

    def test_no_checkpoint_returns_none(self):
        platform, db, store = make_db()
        assert platform.engine.run_process(store.load_latest()) is None

    def test_newest_image_wins(self):
        platform, db, store = make_db()
        engine = platform.engine
        insert_rows(platform, db, 0, 5)
        engine.run_process(checkpoint_and_truncate(engine, db, store))
        insert_rows(platform, db, 5, 5)
        engine.run_process(checkpoint_and_truncate(engine, db, store))
        _lsn, blob = engine.run_process(store.load_latest())
        fresh = RelationalEngine(engine, db.wal)
        fresh.load_checkpoint(blob)
        assert fresh.row_count("t") == 10

    def test_oversized_checkpoint_rejected(self):
        platform, db, store = make_db()
        store.slot_pages = 1
        engine = platform.engine

        def fat_rows():
            for i in range(30):
                txn = db.begin()
                yield engine.process(db.insert(txn, "t", i, {"v": bytes(400)}))
                yield engine.process(db.commit(txn))

        engine.run_process(fat_rows())
        with pytest.raises(CheckpointError, match="exceeds slot"):
            engine.run_process(
                checkpoint_and_truncate(engine, db, store))


class TestBoundedRecovery:
    @pytest.mark.parametrize("wal_kind", ["block", "ba"])
    def test_recovery_is_checkpoint_plus_tail(self, wal_kind):
        platform, db, store = make_db(wal_kind)
        engine = platform.engine
        insert_rows(platform, db, 0, 20)
        engine.run_process(checkpoint_and_truncate(engine, db, store))
        insert_rows(platform, db, 20, 7)  # the WAL tail
        platform.power.power_cycle()

        fresh = RelationalEngine(engine, db.wal)
        start_lsn, replayed = engine.run_process(
            recover_from_checkpoint(engine, fresh, store))
        assert start_lsn > 0
        assert replayed == 7  # only the tail, not all 27 ops

        def check():
            for i in range(27):
                row = yield engine.process(fresh.get("t", i))
                assert row == {"v": i}, i

        engine.run_process(check())

    def test_recovery_without_checkpoint_replays_everything(self):
        platform, db, store = make_db()
        engine = platform.engine
        insert_rows(platform, db, 0, 8)
        platform.power.power_cycle()
        fresh = RelationalEngine(engine, db.wal)
        fresh.create_table("t")
        start_lsn, replayed = engine.run_process(
            recover_from_checkpoint(engine, fresh, store))
        assert start_lsn == 0
        assert replayed == 8

    def test_crash_mid_checkpoint_falls_back_to_previous(self):
        """Ping-pong slots: a torn checkpoint write must not lose the
        previous valid image."""
        platform, db, store = make_db()
        engine = platform.engine
        insert_rows(platform, db, 0, 10)
        engine.run_process(checkpoint_and_truncate(engine, db, store))
        insert_rows(platform, db, 10, 5)
        # Simulate a torn write of the second checkpoint: corrupt the slot
        # it would use by writing garbage directly.
        slot_lpn = store._slot_lpn(store._next_slot)
        engine.run_process(store.device.write(slot_lpn, b"\xff" * 4096))
        loaded = engine.run_process(store.load_latest())
        assert loaded is not None
        _lsn, blob = loaded
        fresh = RelationalEngine(engine, db.wal)
        fresh.load_checkpoint(blob)
        assert fresh.row_count("t") == 10  # the first checkpoint's state


class TestCheckpointCrashSweep:
    """Crash-point sweep across a workload interleaved with checkpoints:
    at every instant, recovery = newest surviving checkpoint + WAL tail,
    and no committed row is ever lost."""

    @pytest.mark.parametrize("crash_us", [30, 120, 400, 900, 1600])
    def test_crash_anywhere_recovers_all_committed(self, crash_us):
        from repro.core import CrashHarness
        from repro.sim.units import USEC

        platform, db, store = make_db(wal_kind="ba")
        engine = platform.engine
        acked = {}

        def workload():
            for i in range(60):
                txn = db.begin()
                yield engine.process(db.insert(txn, "t", i, {"v": i}))
                yield engine.process(db.commit(txn))
                acked[i] = i
                if i % 20 == 19:
                    yield engine.process(
                        checkpoint_and_truncate(engine, db, store))

        harness = CrashHarness(platform)
        harness.crash_at(crash_us * USEC, workload())
        acked_at_crash = dict(acked)

        fresh = RelationalEngine(engine, db.wal)
        fresh.create_table("t")
        start_lsn, _replayed = engine.run_process(
            recover_from_checkpoint(engine, fresh, store))

        def check():
            for key, value in acked_at_crash.items():
                row = yield engine.process(fresh.get("t", key))
                assert row == {"v": value}, (key, row)

        engine.run_process(check())
