"""Integration tests for the 2B-SSD device: dual-path access, durability,
power-loss recovery, read DMA, and API timing."""

import pytest

from repro.core import (
    BaParams,
    GatedLbaError,
    PinConflictError,
    PowerController,
    TwoBApiClient,
    TwoBSSD,
)
from repro.host import ByteRegion, HostCPU
from repro.pcie import PcieLink
from repro.sim import Engine, RngStreams
from repro.sim.units import MiB, USEC

PAGE = 4096


def make_platform(ba_params=None):
    engine = Engine()
    link = PcieLink(engine)
    cpu = HostCPU(engine, link)
    device = TwoBSSD(engine, ba_params=ba_params, rng=RngStreams(5))
    api = TwoBApiClient(engine, cpu, device)
    power = PowerController(engine)
    power.attach_cpu(cpu)
    power.attach_link(link)
    power.attach_device(device)
    return engine, cpu, device, api, power


class TestDualPathAccess:
    def test_pin_loads_block_written_data(self):
        """File written via block I/O is readable through the byte path."""
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            yield engine.process(device.write(100, b"file contents via block path"))
            entry = yield engine.process(api.ba_pin(0, 0, 100, PAGE))
            return (yield engine.process(api.mmio_read(entry, 0, 28)))

        assert engine.run_process(scenario()) == b"file contents via block path"

    def test_mmio_writes_reach_nand_after_flush(self):
        """Bytes written via MMIO land on NAND after BA_FLUSH and are then
        visible through the block path."""
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            entry = yield engine.process(api.ba_pin(0, 0, 200, PAGE))
            yield engine.process(api.mmio_write(entry, 0, b"byte-path log record"))
            yield engine.process(api.ba_sync(0))
            yield engine.process(api.ba_flush(0))
            return (yield engine.process(device.read(200, 20)))

        assert engine.run_process(scenario()) == b"byte-path log record"

    def test_flush_deletes_entry(self):
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            yield engine.process(api.ba_pin(0, 0, 10, PAGE))
            yield engine.process(api.ba_flush(0))

        engine.run_process(scenario())
        assert 0 not in device.mapping_table

    def test_block_write_to_pinned_range_gated(self):
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            yield engine.process(api.ba_pin(0, 0, 300, 4 * PAGE))
            yield engine.process(device.write(301, b"racing block write"))

        with pytest.raises(GatedLbaError):
            engine.run_process(scenario())
        assert device.stats.gated_writes == 0  # rejected before counting

    def test_block_write_allowed_after_flush(self):
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            yield engine.process(api.ba_pin(0, 0, 300, PAGE))
            yield engine.process(api.ba_flush(0))
            yield engine.process(device.write(300, b"fine now"))
            return (yield engine.process(device.read(300, 8)))

        assert engine.run_process(scenario()) == b"fine now"

    def test_block_read_of_pinned_range_allowed(self):
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            yield engine.process(device.write(50, b"stale"))
            yield engine.process(api.ba_pin(0, 0, 50, PAGE))
            entry = device.mapping_table.get(0)
            yield engine.process(api.mmio_write(entry, 0, b"newer"))
            # Block read sees NAND state: stale until BA_FLUSH, by design.
            return (yield engine.process(device.read(50, 5)))

        assert engine.run_process(scenario()) == b"stale"

    def test_pin_sees_unstaged_cache_writes(self):
        """A pin right after a block write must see the cached (latest) data,
        even before it destages to NAND."""
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            yield engine.process(device.write(77, b"cached"))
            entry = yield engine.process(api.ba_pin(0, 0, 77, PAGE))
            return (yield engine.process(api.mmio_read(entry, 0, 6)))

        assert engine.run_process(scenario()) == b"cached"

    def test_pin_rejects_out_of_device_range(self):
        engine, cpu, device, api, _ = make_platform()
        with pytest.raises(PinConflictError, match="exceeds device"):
            engine.run_process(api.ba_pin(0, 0, device.logical_pages, PAGE))

    def test_double_buffering_two_entries(self):
        """The BA-WAL double-buffer pattern: two disjoint halves pinned at once."""
        engine, cpu, device, api, _ = make_platform()
        half = 4 * MiB

        def scenario():
            first = yield engine.process(api.ba_pin(0, 0, 1000, half))
            second = yield engine.process(api.ba_pin(1, half, 2024, half))
            return first, second

        first, second = engine.run_process(scenario())
        assert first.buffer_range() == (0, half)
        assert second.buffer_range() == (half, 2 * half)


class TestReadDma:
    def test_dma_copies_to_host_memory(self):
        engine, cpu, device, api, _ = make_platform()
        host_buf = ByteRegion("host-dram", 64 * 1024)

        def scenario():
            yield engine.process(device.write(10, b"bulk data to fetch" * 100))
            entry = yield engine.process(api.ba_pin(0, 0, 10, PAGE))
            yield engine.process(api.ba_read_dma(0, host_buf, 0, PAGE))
            return host_buf.read(0, 18)

        assert engine.run_process(scenario()) == b"bulk data to fetch"

    def test_dma_4k_latency_calibration(self):
        # Fig. 7(a): read DMA at 4 KiB ~58 us.
        engine, cpu, device, api, _ = make_platform()
        host_buf = ByteRegion("host-dram", PAGE)

        def scenario():
            yield engine.process(api.ba_pin(0, 0, 10, PAGE))
            start = engine.now
            yield engine.process(api.ba_read_dma(0, host_buf, 0, PAGE))
            return engine.now - start

        latency = engine.run_process(scenario())
        assert latency == pytest.approx(58 * USEC, rel=0.05)

    def test_dma_beats_mmio_read_at_2k(self):
        # §III-A3: reads of >= 2 KiB benefit from the read DMA engine.
        engine, cpu, device, api, _ = make_platform()
        host_buf = ByteRegion("host-dram", PAGE)

        def scenario():
            entry = yield engine.process(api.ba_pin(0, 0, 10, PAGE))
            t0 = engine.now
            yield engine.process(api.mmio_read(entry, 0, 2048))
            mmio_time = engine.now - t0
            t1 = engine.now
            yield engine.process(api.ba_read_dma(0, host_buf, 0, 2048))
            dma_time = engine.now - t1
            return mmio_time, dma_time

        mmio_time, dma_time = engine.run_process(scenario())
        assert dma_time < mmio_time

    def test_mmio_read_beats_dma_below_1k(self):
        engine, cpu, device, api, _ = make_platform()
        host_buf = ByteRegion("host-dram", PAGE)

        def scenario():
            entry = yield engine.process(api.ba_pin(0, 0, 10, PAGE))
            t0 = engine.now
            yield engine.process(api.mmio_read(entry, 0, 256))
            mmio_time = engine.now - t0
            t1 = engine.now
            yield engine.process(api.ba_read_dma(0, host_buf, 0, 256))
            dma_time = engine.now - t1
            return mmio_time, dma_time

        mmio_time, dma_time = engine.run_process(scenario())
        assert mmio_time < dma_time

    def test_dma_length_bounded_by_entry(self):
        engine, cpu, device, api, _ = make_platform()
        host_buf = ByteRegion("host-dram", 2 * PAGE)

        def scenario():
            yield engine.process(api.ba_pin(0, 0, 10, PAGE))
            yield engine.process(api.ba_read_dma(0, host_buf, 0, 2 * PAGE))

        with pytest.raises(ValueError, match="exceeds entry"):
            engine.run_process(scenario())


class TestPowerLoss:
    def test_synced_data_survives_power_cycle(self):
        """The headline durability property: BA_SYNC'ed bytes survive power
        loss via the capacitor-backed emergency dump, and the mapping table
        is restored with them."""
        engine, cpu, device, api, power = make_platform()

        def before_crash():
            entry = yield engine.process(api.ba_pin(0, 0, 500, PAGE))
            yield engine.process(api.mmio_write(entry, 0, b"committed transaction"))
            yield engine.process(api.ba_sync(0))

        engine.run_process(before_crash())
        report, restored = power.power_cycle()
        assert report.device_dumps["2B-SSD"] is True
        assert restored["2B-SSD"] is True
        assert device.ba_dram.read(0, 21) == b"committed transaction"
        assert device.mapping_table.get(0).lba == 500

        def after_recovery():
            # The restored entry can be flushed to NAND and read via block I/O.
            yield engine.process(api.ba_flush(0))
            return (yield engine.process(device.read(500, 21)))

        assert engine.run_process(after_recovery()) == b"committed transaction"

    def test_unsynced_data_lost_in_wc_buffer(self):
        """Writes not yet BA_SYNC'ed sit in the CPU WC buffer and die with it
        — exactly the data the protocol does not declare durable."""
        engine, cpu, device, api, power = make_platform()

        def before_crash():
            entry = yield engine.process(api.ba_pin(0, 0, 500, PAGE))
            yield engine.process(api.mmio_write(entry, 0, b"uncommitted"))
            # no ba_sync

        engine.run_process(before_crash())
        report, _ = power.power_cycle()
        assert report.wc_lines_lost > 0
        assert device.ba_dram.read(0, 11) == bytes(11)

    def test_insufficient_capacitance_loses_buffer(self):
        weak = BaParams(capacitance_farads=1e-6)  # window far too short
        engine, cpu, device, api, power = make_platform(ba_params=weak)

        def before_crash():
            entry = yield engine.process(api.ba_pin(0, 0, 500, PAGE))
            yield engine.process(api.mmio_write(entry, 0, b"doomed"))
            yield engine.process(api.ba_sync(0))

        engine.run_process(before_crash())
        report, restored = power.power_cycle()
        assert report.device_dumps["2B-SSD"] is False
        assert restored["2B-SSD"] is False
        assert device.ba_dram.read(0, 6) == bytes(6)
        assert not device.recovery.stats.clean_record

    def test_clean_power_on_without_image(self):
        engine, cpu, device, api, power = make_platform()
        restored = power.power_on()
        assert restored["2B-SSD"] is False
        assert len(device.mapping_table) == 0

    def test_block_cache_survives_via_plp(self):
        engine, cpu, device, api, power = make_platform()
        engine.run_process(device.write(42, b"block side"))
        power.power_cycle()
        assert device.persisted_page(42)[:10] == b"block side"


class TestApiTiming:
    def test_ba_sync_cost_is_sub_microsecond(self):
        """§IV-A: commit persistence overhead is 'negligible' — the
        BA_SYNC of a small record costs well under 1 us."""
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            entry = yield engine.process(api.ba_pin(0, 0, 10, PAGE))
            yield engine.process(api.mmio_write(entry, 0, b"x" * 64))
            start = engine.now
            yield engine.process(api.ba_sync(0))
            return engine.now - start

        sync_cost = engine.run_process(scenario())
        assert sync_cost < 1 * USEC

    def test_persistent_append_26x_faster_than_dc_block_write(self):
        """§V-C: commit overhead reduced up to 26x vs block-I/O logging.
        A small durable MMIO append vs a DC-SSD 4 KiB log-page write."""
        from repro.ssd import DC_SSD
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            entry = yield engine.process(api.ba_pin(0, 0, 10, PAGE))
            start = engine.now
            yield engine.process(api.mmio_write(entry, 0, b"y" * 8))
            yield engine.process(api.ba_sync(0))
            return engine.now - start

        ba_commit = engine.run_process(scenario())
        # Conventional logging pays the 4 KiB page write plus fsync().
        dc_commit = (DC_SSD.write_latency(4096) + DC_SSD.fs_sync_overhead
                     + DC_SSD.flush_latency)
        assert dc_commit / ba_commit > 20


class TestWhyTheLbaCheckerExists:
    def test_without_gating_block_writes_to_pinned_ranges_are_lost(self):
        """Disable the checker (hardware-bypass thought experiment): a
        block write into a pinned range is silently destroyed by the next
        BA_FLUSH — the 'inadvertent data update' hazard of §III-A2."""
        engine, cpu, device, api, _ = make_platform()
        device.lba_gate = None  # rip out the checker

        def scenario():
            yield engine.process(device.write(400, b"original file data"))
            entry = yield engine.process(api.ba_pin(0, 0, 400, PAGE))
            # Another application writes the same LBA via the block path;
            # nothing stops it now.
            yield engine.process(device.write(400, b"concurrent block write"))
            # The byte-path owner, oblivious, modifies its (stale) copy
            # and flushes.
            yield engine.process(api.mmio_write(entry, 0, b"byte-path update  "))
            yield engine.process(api.ba_sync(0))
            yield engine.process(api.ba_flush(0))
            yield engine.process(device.drain())
            return (yield engine.process(device.read(400, 22)))

        final = engine.run_process(scenario())
        # The concurrent block write vanished without a trace.
        assert b"concurrent" not in final
        assert final.startswith(b"byte-path update")

    def test_with_gating_the_same_race_is_rejected_loudly(self):
        engine, cpu, device, api, _ = make_platform()

        def scenario():
            yield engine.process(device.write(400, b"original file data"))
            yield engine.process(api.ba_pin(0, 0, 400, PAGE))
            yield engine.process(device.write(400, b"concurrent block write"))

        with pytest.raises(GatedLbaError):
            engine.run_process(scenario())
