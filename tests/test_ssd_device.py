"""Unit tests for device profiles and the block SSD."""

import pytest

from repro.sim import Engine, RngStreams
from repro.sim.units import MiB, USEC
from repro.ssd import DC_SSD, BlockSSD, DeviceProfile, TWOB_BASE, ULL_SSD


def make_ssd(profile=ULL_SSD):
    engine = Engine()
    return engine, BlockSSD(engine, profile, RngStreams(11))


class TestProfiles:
    def test_4k_read_latency_calibration(self):
        # Fig. 7(a): ULL ~13.2 us, DC ~6-7x slower.
        assert ULL_SSD.read_latency(4096) == pytest.approx(13.2 * USEC, rel=0.05)
        ratio = DC_SSD.read_latency(4096) / ULL_SSD.read_latency(4096)
        assert 5.5 <= ratio <= 7.5

    def test_4k_write_latency_calibration(self):
        # Fig. 7(b): ULL ~10 us, DC ~17 us (ULL "70% lower").
        assert ULL_SSD.write_latency(4096) == pytest.approx(10 * USEC, rel=0.05)
        assert DC_SSD.write_latency(4096) == pytest.approx(17 * USEC, rel=0.05)

    def test_streaming_bandwidths(self):
        # Fig. 8: ULL saturates PCIe Gen3 x4 (~3.2 GB/s) even at QD1.
        size = 16 * MiB
        ull_read_bw = size / ULL_SSD.read_latency(size)
        assert ull_read_bw == pytest.approx(3.2e9, rel=0.01)
        dc_write_bw = size / DC_SSD.write_latency(size)
        assert dc_write_bw == pytest.approx(1.5e9, rel=0.01)

    def test_twob_block_path_identical_to_ull(self):
        # §V-A: 2B-SSD piggybacks on the ULL-SSD.
        for size in (512, 4096, 65536):
            assert TWOB_BASE.read_latency(size) == ULL_SSD.read_latency(size)
            assert TWOB_BASE.write_latency(size) == ULL_SSD.write_latency(size)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(
                name="bad", description="", read_base=0, read_bandwidth=1,
                write_base=1, write_bandwidth=1, flush_latency=1,
                fs_sync_overhead=0, cache_bytes=4096, plp_cache=True,
                nand_timing=ULL_SSD.nand_timing, geometry=ULL_SSD.geometry,
            )


class TestBlockSSD:
    def test_write_read_roundtrip(self):
        engine, ssd = make_ssd()

        def scenario():
            yield engine.process(ssd.write(10, b"block-data"))
            return (yield engine.process(ssd.read(10, 10)))

        assert engine.run_process(scenario()) == b"block-data"

    def test_write_latency_matches_profile(self):
        engine, ssd = make_ssd()
        engine.run_process(ssd.write(0, b"x" * 4096))
        assert engine.now == pytest.approx(ULL_SSD.write_latency(4096), rel=0.01)

    def test_multi_page_write_roundtrip(self):
        engine, ssd = make_ssd()
        payload = bytes(range(256)) * 48  # 3 pages

        def scenario():
            yield engine.process(ssd.write(5, payload))
            return (yield engine.process(ssd.read(5, len(payload))))

        assert engine.run_process(scenario()) == payload

    def test_unwritten_reads_zero(self):
        engine, ssd = make_ssd()
        assert engine.run_process(ssd.read(3, 16)) == bytes(16)

    def test_data_destages_to_nand(self):
        engine, ssd = make_ssd()

        def scenario():
            yield engine.process(ssd.write(7, b"to-nand"))
            yield engine.process(ssd.drain())

        engine.run_process(scenario())
        assert ssd.dirty_cache_pages == 0
        assert ssd.ftl.peek(7)[:7] == b"to-nand"

    def test_read_sees_cache_before_destage(self):
        engine, ssd = make_ssd()

        def scenario():
            yield engine.process(ssd.write(7, b"fresh"))
            # Immediately read back: destage may not have finished.
            return (yield engine.process(ssd.read(7, 5)))

        assert engine.run_process(scenario()) == b"fresh"

    def test_flush_with_plp_is_fast(self):
        engine, ssd = make_ssd()

        def scenario():
            yield engine.process(ssd.write(0, b"x" * 4096))
            start = engine.now
            yield engine.process(ssd.flush())
            return engine.now - start

        flush_time = engine.run_process(scenario())
        assert flush_time == pytest.approx(ULL_SSD.flush_latency, rel=0.01)

    def test_plp_cache_survives_power_loss(self):
        engine, ssd = make_ssd()
        engine.run_process(ssd.write(4, b"acknowledged"))
        ssd.power_loss()
        assert ssd.persisted_page(4)[:12] == b"acknowledged"

    def test_non_plp_cache_lost_on_power_loss(self):
        profile = DeviceProfile(
            name="no-plp", description="consumer drive", read_base=ULL_SSD.read_base,
            read_bandwidth=ULL_SSD.read_bandwidth, write_base=ULL_SSD.write_base,
            write_bandwidth=ULL_SSD.write_bandwidth, flush_latency=ULL_SSD.flush_latency,
            fs_sync_overhead=ULL_SSD.fs_sync_overhead, cache_bytes=ULL_SSD.cache_bytes,
            plp_cache=False, nand_timing=ULL_SSD.nand_timing, geometry=ULL_SSD.geometry,
        )
        engine, ssd = make_ssd(profile)
        engine.run_process(ssd.write(4, b"volatile"))
        ssd.power_loss()
        assert ssd.persisted_page(4) == bytes(4096)

    def test_non_plp_flush_waits_for_destage(self):
        profile = DeviceProfile(
            name="no-plp", description="", read_base=ULL_SSD.read_base,
            read_bandwidth=ULL_SSD.read_bandwidth, write_base=ULL_SSD.write_base,
            write_bandwidth=ULL_SSD.write_bandwidth, flush_latency=ULL_SSD.flush_latency,
            fs_sync_overhead=ULL_SSD.fs_sync_overhead, cache_bytes=ULL_SSD.cache_bytes,
            plp_cache=False, nand_timing=ULL_SSD.nand_timing, geometry=ULL_SSD.geometry,
        )
        engine, ssd = make_ssd(profile)

        def scenario():
            yield engine.process(ssd.write(0, b"x" * 4096))
            yield engine.process(ssd.flush())

        engine.run_process(scenario())
        assert ssd.dirty_cache_pages == 0
        # Flush had to cover the NAND program (~100 us for Z-NAND).
        assert engine.now > 100 * USEC

    def test_trim_discards_data(self):
        engine, ssd = make_ssd()

        def scenario():
            yield engine.process(ssd.write(9, b"junk"))
            yield engine.process(ssd.drain())
            ssd.trim(9, 1)
            return (yield engine.process(ssd.read(9, 4)))

        assert engine.run_process(scenario()) == bytes(4)

    def test_out_of_range_rejected(self):
        engine, ssd = make_ssd()
        with pytest.raises(ValueError, match="outside device"):
            engine.run_process(ssd.write(ssd.logical_pages, b"x"))

    def test_zero_size_io_rejected(self):
        engine, ssd = make_ssd()
        with pytest.raises(ValueError, match="positive"):
            engine.run_process(ssd.read(0, 0))

    def test_fsync_adds_fs_overhead(self):
        engine, ssd = make_ssd()

        def scenario():
            start = engine.now
            yield engine.process(ssd.fsync())
            return engine.now - start

        cost = engine.run_process(scenario())
        expected = ULL_SSD.flush_latency + ULL_SSD.fs_sync_overhead
        assert cost == pytest.approx(expected, rel=0.01)

    def test_stats_track_commands(self):
        engine, ssd = make_ssd()

        def scenario():
            yield engine.process(ssd.write(0, b"abc"))
            yield engine.process(ssd.read(0, 3))
            yield engine.process(ssd.flush())

        engine.run_process(scenario())
        assert ssd.stats.writes == 1
        assert ssd.stats.reads == 1
        assert ssd.stats.flushes == 1
        assert ssd.stats.bytes_written == 3
