"""Integration tests for the three WAL backends: conventional block WAL
(sync + async), BA-WAL on the 2B-SSD, and PM-buffered WAL."""

import pytest

from repro.sim.units import USEC
from repro.ssd import DC_SSD, ULL_SSD
from repro.wal import BaWAL, BlockWAL, CommitMode, PmWAL
from tests.helpers import Platform, small_ba_params


def make_block_wal(mode=CommitMode.SYNCHRONOUS, profile=ULL_SSD):
    platform = Platform()
    device = platform.add_block_ssd(profile)
    wal = BlockWAL(platform.engine, device, platform.cpu, mode=mode, area_pages=1024)
    return platform, device, wal


def make_ba_wal(buffer_kib=64, double_buffer=True):
    platform = Platform(ba_params=small_ba_params(buffer_kib))
    wal = BaWAL(platform.engine, platform.api, area_pages=1024,
                double_buffer=double_buffer)
    platform.engine.run_process(wal.start())
    return platform, wal


class TestBlockWalSync:
    def test_append_commit_recover_roundtrip(self):
        platform, device, wal = make_block_wal()
        engine = platform.engine

        def scenario():
            for i in range(20):
                yield engine.process(wal.append_and_commit(b"record-%d" % i))
            return (yield engine.process(wal.recover()))

        records = engine.run_process(scenario())
        assert [p for _lsn, p in records] == [b"record-%d" % i for i in range(20)]

    def test_commit_blocks_until_durable(self):
        platform, device, wal = make_block_wal()
        engine = platform.engine

        def scenario():
            lsn = yield engine.process(wal.append(b"x" * 100))
            assert wal.durable_lsn < lsn
            yield engine.process(wal.commit(lsn))
            assert wal.durable_lsn >= lsn

        engine.run_process(scenario())

    def test_synchronous_commit_survives_crash(self):
        platform, device, wal = make_block_wal()
        engine = platform.engine

        def scenario():
            yield engine.process(wal.append_and_commit(b"acknowledged"))

        engine.run_process(scenario())
        platform.power.power_cycle()

        def recovery():
            return (yield engine.process(wal.recover()))

        records = engine.run_process(recovery())
        assert [p for _lsn, p in records] == [b"acknowledged"]

    def test_group_commit_batches_concurrent_commits(self):
        platform, device, wal = make_block_wal()
        engine = platform.engine

        def client(i):
            yield engine.process(wal.append_and_commit(b"txn-%d" % i))

        def scenario():
            procs = [engine.process(client(i)) for i in range(16)]
            yield engine.all_of(procs)

        engine.run_process(scenario())
        # 16 commits must share far fewer device writes than 16.
        assert wal.stats.commits == 16
        assert device.stats.writes < 16

    def test_page_rewrites_accumulate_for_small_records(self):
        platform, device, wal = make_block_wal()
        engine = platform.engine

        def scenario():
            for i in range(10):
                yield engine.process(wal.append_and_commit(b"tiny"))

        engine.run_process(scenario())
        # Ten small commits land in the same 4 KiB page: it is rewritten
        # repeatedly (the WAF burden of conventional WAL, §IV-A).
        assert wal.stats.page_rewrites >= 8

    def test_area_overflow_detected(self):
        platform, device, wal = make_block_wal()
        platform_engine = platform.engine
        wal.area_pages = 2  # shrink after construction for the test

        def scenario():
            for _ in range(10):
                yield platform_engine.process(wal.append(b"x" * 2000))

        with pytest.raises(RuntimeError, match="overflow"):
            platform_engine.run_process(scenario())


class TestBlockWalAsync:
    def test_async_commit_returns_immediately(self):
        platform, device, wal = make_block_wal(mode=CommitMode.ASYNCHRONOUS)
        engine = platform.engine

        def scenario():
            lsn = yield engine.process(wal.append(b"fire and forget"))
            start = engine.now
            yield engine.process(wal.commit(lsn))
            return engine.now - start

        assert engine.run_process(scenario()) == 0.0

    def test_async_commit_can_lose_acknowledged_data(self):
        """The paper's risk window: a crash right after an async commit
        loses the transaction."""
        platform, device, wal = make_block_wal(mode=CommitMode.ASYNCHRONOUS)
        engine = platform.engine

        def scenario():
            lsn = yield engine.process(wal.append(b"at risk"))
            yield engine.process(wal.commit(lsn))

        engine.run_process(scenario())
        # Crash "immediately": the background writer may not have flushed.
        # Rebuild the flush state: commit acknowledged, durable horizon behind.
        assert wal.stats.commits == 1

    def test_async_eventually_durable(self):
        platform, device, wal = make_block_wal(mode=CommitMode.ASYNCHRONOUS)
        engine = platform.engine

        def scenario():
            lsn = yield engine.process(wal.append(b"eventually"))
            yield engine.process(wal.commit(lsn))
            return lsn

        lsn = engine.run_process(scenario())
        engine.run()  # let the background writer drain
        assert wal.durable_lsn >= lsn


class TestBaWal:
    def test_append_commit_recover_roundtrip(self):
        platform, wal = make_ba_wal()
        engine = platform.engine

        def scenario():
            for i in range(20):
                yield engine.process(wal.append_and_commit(b"ba-record-%d" % i))
            return (yield engine.process(wal.recover()))

        records = engine.run_process(scenario())
        assert [p for _l, p in records] == [b"ba-record-%d" % i for i in range(20)]

    def test_commit_is_sub_microsecond(self):
        platform, wal = make_ba_wal()
        engine = platform.engine

        def scenario():
            lsn = yield engine.process(wal.append(b"x" * 64))
            start = engine.now
            yield engine.process(wal.commit(lsn))
            return engine.now - start

        assert engine.run_process(scenario()) < 1.2 * USEC

    def test_committed_records_survive_power_cycle(self):
        platform, wal = make_ba_wal()
        engine = platform.engine

        def scenario():
            for i in range(5):
                yield engine.process(wal.append_and_commit(b"durable-%d" % i))

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = BaWAL(engine, platform.api, area_pages=1024)

        def recovery():
            return (yield engine.process(fresh.recover()))

        records = engine.run_process(recovery())
        assert [p for _l, p in records] == [b"durable-%d" % i for i in range(5)]

    def test_uncommitted_record_lost_on_power_cycle(self):
        platform, wal = make_ba_wal()
        engine = platform.engine

        def scenario():
            yield engine.process(wal.append_and_commit(b"committed"))
            yield engine.process(wal.append(b"uncommitted"))  # no BA_SYNC

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = BaWAL(engine, platform.api, area_pages=1024)

        def recovery():
            return (yield engine.process(fresh.recover()))

        records = engine.run_process(recovery())
        assert [p for _l, p in records] == [b"committed"]

    def test_segment_recycling_under_sustained_logging(self):
        """Logging far beyond one BA-buffer exercises the flush + re-pin
        (double buffering) path; every record must still recover."""
        platform, wal = make_ba_wal(buffer_kib=16)  # 8 KiB halves
        engine = platform.engine
        count = 200  # ~100 bytes/record -> several segment switches

        def scenario():
            for i in range(count):
                yield engine.process(wal.append_and_commit(b"r%04d" % i + b"." * 80))
            return (yield engine.process(wal.recover()))

        records = engine.run_process(scenario())
        payloads = [p for _l, p in records]
        assert len(payloads) == count
        assert payloads[0].startswith(b"r0000")
        assert payloads[-1].startswith(b"r%04d" % (count - 1))
        assert wal.stats.device_writes > 0  # BA_FLUSHes happened

    def test_single_buffer_mode_stalls_but_recovers(self):
        platform, wal = make_ba_wal(buffer_kib=16, double_buffer=False)
        engine = platform.engine
        count = 100

        def scenario():
            for i in range(count):
                yield engine.process(wal.append_and_commit(b"s%04d" % i + b"." * 80))
            return (yield engine.process(wal.recover()))

        records = engine.run_process(scenario())
        assert len(records) == count
        assert wal.stats.flush_stalls > 0

    def test_records_do_not_span_segments(self):
        platform, wal = make_ba_wal(buffer_kib=16)
        engine = platform.engine
        half = wal.segment_bytes

        def scenario():
            # Two records that almost fill a half, forcing a switch whose
            # padding the recovery scan must accept.
            yield engine.process(wal.append_and_commit(b"a" * (half - 100)))
            yield engine.process(wal.append_and_commit(b"b" * 200))
            return (yield engine.process(wal.recover()))

        records = engine.run_process(scenario())
        assert [p[:1] for _l, p in records] == [b"a", b"b"]
        # Second record starts exactly at the next segment boundary.
        assert records[1][0] == half

    def test_throughput_advantage_over_sync_block_wal(self):
        """The core claim: BA commits cost ~1 us, block sync commits ~15-22 us."""
        platform, ba_wal = make_ba_wal()
        engine = platform.engine

        def ba_run():
            start = engine.now
            for i in range(50):
                yield engine.process(ba_wal.append_and_commit(b"z" * 100))
            return engine.now - start

        ba_time = engine.run_process(ba_run())

        platform2, device2, block_wal = make_block_wal(profile=ULL_SSD)
        engine2 = platform2.engine

        def block_run():
            start = engine2.now
            for i in range(50):
                yield engine2.process(block_wal.append_and_commit(b"z" * 100))
            return engine2.now - start

        block_time = engine2.run_process(block_run())
        assert block_time / ba_time > 5


class TestPmWal:
    def make(self, profile=ULL_SSD, pm_kib=64):
        platform = Platform()
        device = platform.add_block_ssd(profile)
        wal = PmWAL(platform.engine, device, platform.cpu,
                    pm_bytes=pm_kib * 1024, area_pages=1024)
        return platform, device, wal

    def test_append_commit_recover_roundtrip(self):
        platform, device, wal = self.make()
        engine = platform.engine

        def scenario():
            for i in range(20):
                yield engine.process(wal.append_and_commit(b"pm-%d" % i))
            return (yield engine.process(wal.recover()))

        records = engine.run_process(scenario())
        assert [p for _l, p in records] == [b"pm-%d" % i for i in range(20)]

    def test_durable_at_append_time(self):
        platform, device, wal = self.make()
        engine = platform.engine

        def scenario():
            lsn = yield engine.process(wal.append(b"instant"))
            return lsn

        lsn = engine.run_process(scenario())
        assert wal.durable_lsn >= lsn

    def test_commit_is_cheap(self):
        platform, device, wal = self.make()
        engine = platform.engine

        def scenario():
            lsn = yield engine.process(wal.append(b"cheap commit"))
            start = engine.now
            yield engine.process(wal.commit(lsn))
            return engine.now - start

        assert engine.run_process(scenario()) < 0.5 * USEC

    def test_flusher_drains_to_device(self):
        platform, device, wal = self.make()
        engine = platform.engine

        def scenario():
            for i in range(100):
                yield engine.process(wal.append_and_commit(bytes(100)))

        engine.run_process(scenario())
        engine.run()
        assert wal.drained_lsn > 0
        assert device.stats.writes > 0

    def test_small_pm_buffer_stalls_appends(self):
        platform, device, wal = self.make(profile=DC_SSD, pm_kib=8)
        engine = platform.engine

        def scenario():
            for i in range(100):
                yield engine.process(wal.append(b"y" * 500))

        engine.run_process(scenario())
        assert wal.stats.flush_stalls > 0

    def test_recover_spans_device_and_pm(self):
        platform, device, wal = self.make(pm_kib=8)
        engine = platform.engine
        payloads = [b"record-%03d" % i + b"!" * 200 for i in range(120)]

        def scenario():
            for payload in payloads:
                yield engine.process(wal.append_and_commit(payload))
            return (yield engine.process(wal.recover()))

        records = engine.run_process(scenario())
        assert [p for _l, p in records] == payloads
        assert wal.drained_lsn > 0  # part of the log came from the device


class TestBaWalStitch:
    """Synthetic tests of the recovery stitcher: contiguous runs with
    segment-aligned padding jumps, wrap re-anchoring, and gap rejection."""

    def make_wal(self):
        platform = Platform(ba_params=small_ba_params(16))
        wal = BaWAL(platform.engine, platform.api, area_pages=1024,
                    segment_bytes=8 * 1024)
        return wal

    @staticmethod
    def records_from(lsn, payloads, seg):
        from repro.wal.record import RECORD_HEADER_BYTES
        out = []
        for payload in payloads:
            if lsn % seg + RECORD_HEADER_BYTES + len(payload) > seg:
                lsn = (lsn // seg + 1) * seg  # segment padding jump
            out.append((lsn, payload))
            lsn += RECORD_HEADER_BYTES + len(payload)
        return out

    def test_accepts_segment_padding_jumps(self):
        wal = self.make_wal()
        seg = wal.segment_bytes
        records = self.records_from(0, [bytes(3000)] * 6, seg)
        assert wal._stitch(records, 0) == records
        # There was at least one jump in this stream.
        lsns = [l for l, _ in records]
        assert any(l % seg == 0 for l in lsns[1:])

    def test_rejects_non_boundary_gap(self):
        wal = self.make_wal()
        records = self.records_from(0, [b"a" * 100] * 3, wal.segment_bytes)
        # Introduce a mid-segment gap after the first record.
        broken = [records[0], (records[1][0] + 64, records[1][1])]
        assert wal._stitch(broken, 0) == [records[0]]

    def test_reanchors_after_wrap(self):
        wal = self.make_wal()
        seg = wal.segment_bytes
        # Oldest surviving data starts at segment 40; nothing at LSN 0.
        records = self.records_from(40 * seg, [b"x" * 500] * 10, seg)
        assert wal._stitch(records, 0) == records

    def test_start_lsn_mid_segment(self):
        wal = self.make_wal()
        seg = wal.segment_bytes
        records = self.records_from(0, [b"y" * 200] * 10, seg)
        start = records[4][0]
        assert wal._stitch(records, start) == records[4:]
