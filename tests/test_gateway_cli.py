"""CLI and TCP-face tests: ``repro serve`` and ``repro gateway-bench``."""

import socket
import threading
import time

import pytest

from repro.cli import main
from repro.db.memkv.commands import Command, Reply
from repro.gateway.protocol import (
    FrameDecoder,
    decode_reply_frame,
    encode_request,
)
from repro.gateway.tcp import serve_forever


def test_serve_bind_failure_exits_cleanly(capsys):
    """An occupied port is an operational error: status 2, one stderr
    line, no traceback."""
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    port = blocker.getsockname()[1]
    blocker.listen(1)
    try:
        status = main(["serve", "--port", str(port), "--nodes", "2"])
    finally:
        blocker.close()
    assert status == 2
    err = capsys.readouterr().err
    assert "cannot bind" in err
    assert "Traceback" not in err


def test_serve_roundtrip_over_real_tcp():
    """The asyncio bridge serves the wire protocol on a real socket."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    thread = threading.Thread(
        target=serve_forever, args=("127.0.0.1", port),
        kwargs={"nodes": 2, "seed": 7}, daemon=True)
    thread.start()
    deadline = time.time() + 15
    conn = None
    while time.time() < deadline:
        try:
            conn = socket.create_connection(("127.0.0.1", port), timeout=1.0)
            break
        except OSError:
            time.sleep(0.05)
    assert conn is not None, "gateway never started listening"
    try:
        conn.sendall(encode_request(Command.SET, "greeting", b"hello"))
        conn.sendall(encode_request(Command.GET, "greeting"))
        conn.sendall(encode_request(Command.INCR, "hits"))
        decoder = FrameDecoder()
        replies = []
        conn.settimeout(10.0)
        while len(replies) < 3:
            data = conn.recv(4096)
            assert data, "server hung up mid-reply"
            for body in decoder.feed(data):
                replies.append(decode_reply_frame(body))
    finally:
        conn.close()
    assert replies[0] == (Reply.OK, b"")
    assert replies[1] == (Reply.VALUE, b"\x01hello")
    assert replies[2] == (Reply.OK, b"1")


def test_gateway_bench_list(capsys):
    assert main(["gateway-bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "gateway:c2048xd16" in out
    assert "gateway:c4xd1" in out


def test_gateway_bench_unknown_leg(capsys):
    assert main(["gateway-bench", "--leg", "gateway:nope"]) == 2
    assert "unknown leg" in capsys.readouterr().out


def test_gateway_bench_single_leg_runs(capsys):
    assert main(["gateway-bench", "--leg", "gateway:c4xd1"]) == 0
    out = capsys.readouterr().out
    assert '"throughput"' in out
    assert '"stages"' in out


@pytest.mark.perf
def test_gateway_bench_section_gates_pass(capsys):
    assert main(["gateway-bench"]) == 0
    out = capsys.readouterr().out
    assert "gates: ok" in out
