"""Calibration tests: the simulation hits the paper's reported numbers.

These are the cheap, direct checks of DESIGN.md §5 — model-level constants
and the single-operation latencies they produce (the full sweeps live in
``benchmarks/``).
"""

import pytest

from repro.bench import targets
from repro.core import BaParams
from repro.host import HostParams
from repro.pcie import PcieLink, PcieParams
from repro.sim import Engine
from repro.sim.units import MiB
from repro.ssd import DC_SSD, ULL_SSD


class TestFig7Targets:
    def test_block_read_4k(self):
        assert ULL_SSD.read_latency(4096) == pytest.approx(targets.ULL_READ_4K, rel=0.05)
        ratio = DC_SSD.read_latency(4096) / ULL_SSD.read_latency(4096)
        assert ratio == pytest.approx(targets.DC_OVER_ULL_READ_RATIO, rel=0.15)

    def test_block_write_4k(self):
        assert ULL_SSD.write_latency(4096) == pytest.approx(targets.ULL_WRITE_4K, rel=0.05)
        assert DC_SSD.write_latency(4096) == pytest.approx(targets.DC_WRITE_4K, rel=0.05)

    def test_mmio_read_4k(self):
        link = PcieLink(Engine())
        assert link.mmio_read_latency(4096) == pytest.approx(targets.MMIO_READ_4K,
                                                             rel=0.02)

    def test_mmio_write_calibration_points(self):
        params = HostParams()
        # One 64-byte line: 630 ns (8 B write touches one line).
        assert params.mmio_write_cost(1) == pytest.approx(targets.MMIO_WRITE_8B,
                                                          rel=0.01)
        # 4 KiB = 64 lines: ~2 us (the eviction-stall path reproduces this
        # end to end; the closed form here covers the no-overflow case).
        full = 64 * (params.wc_store_per_line + params.clflush_per_line) + params.mfence
        assert full == pytest.approx(targets.MMIO_WRITE_4K, rel=0.01)

    def test_wvr_overhead_points(self):
        params = HostParams()
        assert params.wvr_cost(1) / targets.MMIO_WRITE_8B == pytest.approx(
            targets.PERSISTENT_OVERHEAD_SMALL, abs=0.02)
        assert params.wvr_cost(64) / targets.MMIO_WRITE_4K == pytest.approx(
            targets.PERSISTENT_OVERHEAD_4K, abs=0.02)

    def test_read_dma_4k(self):
        params = BaParams()
        total = (params.ioctl_latency + params.dma_latency(4096)
                 + params.interrupt_latency)
        assert total == pytest.approx(targets.READ_DMA_4K, rel=0.02)


class TestFig8Targets:
    def test_ull_saturates_pcie(self):
        bw = (16 * MiB) / ULL_SSD.read_latency(16 * MiB)
        assert bw == pytest.approx(targets.ULL_STREAM_BW, rel=0.02)

    def test_internal_bandwidth_plateau(self):
        params = BaParams()
        internal_bw = params.page_size / params.firmware_per_page
        # ~1 GB/s under the ULL's 3.2 GB/s.
        assert targets.ULL_STREAM_BW - internal_bw == pytest.approx(
            targets.TWOB_INTERNAL_BW_GAP, rel=0.1)

    def test_internal_write_vs_dc(self):
        params = BaParams()
        internal_bw = params.page_size / params.firmware_per_page
        dc_bw = (16 * MiB) / DC_SSD.write_latency(16 * MiB)
        assert internal_bw - dc_bw == pytest.approx(targets.TWOB_OVER_DC_WRITE_BW,
                                                    rel=0.15)


class TestTable1Targets:
    def test_ba_buffer_shape(self):
        params = BaParams()
        assert params.buffer_bytes == targets.TABLE1["BA-buffer size"]
        assert params.max_entries == targets.TABLE1["Max. entries of BA-buffer"]

    def test_capacitor_budget_covers_the_dump(self):
        params = BaParams()
        assert params.capacitance_farads == pytest.approx(3 * 270e-6)
        needed = params.buffer_bytes + params.metadata_bytes
        assert params.emergency_budget_bytes > needed

    def test_commit_overhead_reduction_bound(self):
        # §V-C: up to 26x — durable 8 B MMIO append vs DC page write+fsync.
        ba_commit = HostParams().mmio_write_cost(1) + HostParams().wvr_cost(1)
        dc_commit = (DC_SSD.write_latency(4096) + DC_SSD.fs_sync_overhead
                     + DC_SSD.flush_latency)
        assert dc_commit / ba_commit > 20


class TestPcieParams:
    def test_read_split_is_8_bytes(self):
        # Intel SDM: uncacheable reads split into at most 8-byte accesses.
        assert PcieParams().read_split_bytes == 8

    def test_wc_line_is_64_bytes(self):
        assert PcieParams().wc_line_bytes == 64
