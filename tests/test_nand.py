"""Unit tests for the NAND geometry, timing, and flash array."""

import pytest

from repro.nand import (
    FlashArray,
    NandGeometry,
    NandProtocolError,
    NandTiming,
    SLC_ZNAND,
    TLC_VNAND,
)
from repro.sim import Engine, RngStreams
from repro.sim.units import USEC


def make_array(engine=None, **geometry_overrides):
    engine = engine or Engine()
    geometry = NandGeometry(
        channels=2, dies_per_channel=1, blocks_per_die=4, pages_per_block=8,
        **geometry_overrides,
    )
    return engine, FlashArray(engine, geometry, SLC_ZNAND, RngStreams(7))


class TestGeometry:
    def test_ppn_roundtrip(self):
        geometry = NandGeometry(channels=3, dies_per_channel=2,
                                blocks_per_die=5, pages_per_block=7)
        seen = set()
        for channel in range(3):
            for die in range(2):
                for block in range(5):
                    for page in range(7):
                        ppn = geometry.ppn(channel, die, block, page)
                        assert geometry.decompose(ppn) == (channel, die, block, page)
                        seen.add(ppn)
        assert seen == set(range(geometry.pages))

    def test_capacity(self):
        geometry = NandGeometry(channels=2, dies_per_channel=2,
                                blocks_per_die=4, pages_per_block=8, page_size=4096)
        assert geometry.capacity_bytes == 2 * 2 * 4 * 8 * 4096

    def test_out_of_range_rejected(self):
        geometry = NandGeometry(channels=2)
        with pytest.raises(ValueError):
            geometry.ppn(2, 0, 0, 0)
        with pytest.raises(ValueError):
            geometry.decompose(geometry.pages)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            NandGeometry(channels=0)


class TestTiming:
    def test_profiles_are_asymmetric(self):
        for timing in (SLC_ZNAND, TLC_VNAND):
            assert timing.program_latency > timing.read_latency
            assert timing.erase_latency > timing.program_latency

    def test_znand_is_faster_than_tlc(self):
        assert SLC_ZNAND.read_latency < TLC_VNAND.read_latency
        assert SLC_ZNAND.program_latency < TLC_VNAND.program_latency

    def test_jitter_bounds(self):
        rng = RngStreams(1).stream("t")
        timing = NandTiming("x", 10 * USEC, 100 * USEC, 1000 * USEC,
                            jitter_fraction=0.1)
        for _ in range(200):
            sample = timing.sample_read(rng)
            assert 9 * USEC <= sample <= 11 * USEC

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            NandTiming("bad", 0, 1, 1)


class TestFlashArray:
    def test_program_then_read_roundtrip(self):
        engine, flash = make_array()
        payload = bytes(range(256)) * 16  # 4096 bytes

        def scenario():
            yield engine.process(flash.program_page(0, payload))
            data = yield engine.process(flash.read_page(0))
            return data

        assert engine.run_process(scenario()) == payload

    def test_short_program_zero_padded(self):
        engine, flash = make_array()

        def scenario():
            yield engine.process(flash.program_page(0, b"abc"))
            return (yield engine.process(flash.read_page(0)))

        data = engine.run_process(scenario())
        assert data[:3] == b"abc"
        assert data[3:] == bytes(4093)

    def test_unwritten_page_reads_zeros(self):
        engine, flash = make_array()
        data = engine.run_process(flash.read_page(5))
        assert data == bytes(4096)

    def test_program_timing_dominated_by_program_latency(self):
        engine, flash = make_array()
        engine.run_process(flash.program_page(0, b"x" * 4096))
        assert engine.now == pytest.approx(SLC_ZNAND.program_latency, rel=0.1)

    def test_double_program_rejected(self):
        engine, flash = make_array()

        def scenario():
            yield engine.process(flash.program_page(0, b"a"))
            yield engine.process(flash.program_page(0, b"b"))

        with pytest.raises(NandProtocolError, match="erase-before-program"):
            engine.run_process(scenario())

    def test_out_of_order_program_rejected(self):
        engine, flash = make_array()
        with pytest.raises(NandProtocolError, match="out-of-order"):
            engine.run_process(flash.program_page(3, b"a"))

    def test_erase_resets_block(self):
        engine, flash = make_array()

        def scenario():
            yield engine.process(flash.program_page(0, b"old"))
            yield engine.process(flash.erase_block(0, 0, 0))
            yield engine.process(flash.program_page(0, b"new"))
            return (yield engine.process(flash.read_page(0)))

        data = engine.run_process(scenario())
        assert data[:3] == b"new"
        assert flash.erase_count(0, 0, 0) == 1

    def test_erase_makes_pages_read_zero(self):
        engine, flash = make_array()

        def scenario():
            yield engine.process(flash.program_page(0, b"data"))
            yield engine.process(flash.erase_block(0, 0, 0))
            return (yield engine.process(flash.read_page(0)))

        assert engine.run_process(scenario()) == bytes(4096)

    def test_wearout_enforced(self):
        engine = Engine()
        geometry = NandGeometry(channels=1, dies_per_channel=1,
                                blocks_per_die=2, pages_per_block=4)
        timing = NandTiming("fragile", 1 * USEC, 2 * USEC, 3 * USEC,
                            jitter_fraction=0.0, endurance_cycles=2)
        flash = FlashArray(engine, geometry, timing, RngStreams(0))

        def scenario():
            for _ in range(3):
                yield engine.process(flash.erase_block(0, 0, 0))

        with pytest.raises(NandProtocolError, match="worn out"):
            engine.run_process(scenario())

    def test_dies_operate_in_parallel(self):
        engine, flash = make_array()
        # Pages on different channels program concurrently.
        ppn_a = flash.geometry.ppn(0, 0, 0, 0)
        ppn_b = flash.geometry.ppn(1, 0, 0, 0)

        def scenario():
            procs = [
                engine.process(flash.program_page(ppn_a, b"a")),
                engine.process(flash.program_page(ppn_b, b"b")),
            ]
            yield engine.all_of(procs)

        engine.run_process(scenario())
        # Parallel: total time ~ one program, not two.
        assert engine.now < 1.5 * SLC_ZNAND.program_latency * 1.05

    def test_same_die_serializes(self):
        engine, flash = make_array()
        ppn_0 = flash.geometry.ppn(0, 0, 0, 0)
        ppn_1 = flash.geometry.ppn(0, 0, 0, 1)

        def scenario():
            procs = [
                engine.process(flash.program_page(ppn_0, b"a")),
                engine.process(flash.program_page(ppn_1, b"b")),
            ]
            yield engine.all_of(procs)

        engine.run_process(scenario())
        assert engine.now > 1.8 * SLC_ZNAND.program_latency * 0.95

    def test_concurrent_in_order_programs_accepted(self):
        # Submitting page 0 and page 1 simultaneously must not trip the
        # out-of-order check (ordering resolves at the die).
        engine, flash = make_array()

        def scenario():
            procs = [
                engine.process(flash.program_page(0, b"p0")),
                engine.process(flash.program_page(1, b"p1")),
            ]
            yield engine.all_of(procs)

        engine.run_process(scenario())
        assert flash.peek(0)[:2] == b"p0"
        assert flash.peek(1)[:2] == b"p1"

    def test_oversized_write_rejected(self):
        engine, flash = make_array()
        with pytest.raises(ValueError, match="exceeds page size"):
            engine.run_process(flash.program_page(0, b"x" * 5000))

    def test_stats_count_operations(self):
        engine, flash = make_array()

        def scenario():
            yield engine.process(flash.program_page(0, b"a"))
            yield engine.process(flash.read_page(0))
            yield engine.process(flash.erase_block(0, 0, 0))

        engine.run_process(scenario())
        assert flash.stats.page_programs == 1
        assert flash.stats.page_reads == 1
        assert flash.stats.block_erases == 1
