"""Whole-system soak: engines share 2B-SSDs through scheduled faults.

Two layers of soak.  The single-device story: the relational engine, the
LSM store, and the Redis-like store each run their own BA-WAL on the
*same* device — disjoint mapping entries, disjoint BA-buffer slices,
disjoint log areas — while a filesystem occupies the block path.
Mid-workload the power fails.  After recovery, every engine must hold
exactly its acknowledged state.

The pool-level story drives the nemesis campaign scheduler
(:mod:`repro.nemesis`): a composed fault storm — congestion, two node
crashes, a GC storm, a partition, a slow die — over a long simulated
timeline on a replicated device pool, with the streaming analyzer
asserting the durability invariants continuously instead of a single
end-of-run check.

This is the closest thing to the paper's deployment story: 2B-SSDs
serving multiple latency-critical logs at once, through faults.
"""

import pytest

from repro.core import CrashHarness
from repro.db.lsm import DeviceTableStorage, LSMTree
from repro.db.memkv import MemKV
from repro.db.relational import RelationalEngine
from repro.platform import Platform
from repro.sim.units import USEC
from repro.ssd import ULL_SSD
from repro.wal import BaWAL

# The whole module is slow by design; `-m "not soak"` skips it for the
# fast tier-1 path (see ROADMAP.md).
pytestmark = pytest.mark.soak

SEGMENT = 1 << 20  # 1 MiB log segments
AREA_PAGES = 4096


def build_system(seed=90):
    platform = Platform(seed=seed)
    engine = platform.engine

    def make_wal(index, double_buffer=True):
        wal = BaWAL(
            engine, platform.api,
            start_lpn=20_000 + index * AREA_PAGES,
            area_pages=AREA_PAGES,
            segment_bytes=SEGMENT,
            double_buffer=double_buffer,
            entry_ids=(2 * index, 2 * index + 1),
            buffer_base=index * 2 * SEGMENT,
        )
        engine.run_process(wal.start())
        return wal

    relational = RelationalEngine(engine, make_wal(0))
    relational.create_table("accounts")
    sst_device = platform.add_block_ssd(ULL_SSD, name="sst-store")
    lsm = LSMTree(engine, make_wal(1),
                  DeviceTableStorage(engine, sst_device),
                  memtable_bytes=64 * 1024, rng=platform.rng.fork("lsm"))
    memkv = MemKV(engine, make_wal(2, double_buffer=False))
    return platform, relational, lsm, memkv


def test_three_engines_share_one_device_through_a_crash():
    platform, relational, lsm, memkv = build_system()
    engine = platform.engine
    acked = {"sql": {}, "lsm": {}, "kv": {}}

    def sql_client():
        for i in range(120):
            txn = relational.begin()
            yield engine.process(relational.insert(
                txn, "accounts", i % 10, {"v": i}))
            yield engine.process(relational.commit(txn))
            acked["sql"][i % 10] = i

    def lsm_client():
        for i in range(120):
            yield engine.process(lsm.put(f"item{i % 15:02d}", b"%06d" % i))
            acked["lsm"][f"item{i % 15:02d}"] = b"%06d" % i

    def kv_client():
        for i in range(120):
            yield engine.process(memkv.set(f"key{i % 12}", b"%06d" % i))
            acked["kv"][f"key{i % 12}"] = b"%06d" % i

    def mixed_workload():
        procs = [engine.process(sql_client(), name="sql"),
                 engine.process(lsm_client(), name="lsm"),
                 engine.process(kv_client(), name="kv")]
        yield engine.all_of(procs)

    harness = CrashHarness(platform)
    outcome = harness.crash_at(900 * USEC, mixed_workload())
    assert outcome.report.device_dumps["2B-SSD"] is True
    assert outcome.restored["2B-SSD"] is True

    # Rebuild every engine on fresh WAL instances over the surviving state.
    def fresh_wal(index, double_buffer=True):
        return BaWAL(
            engine, platform.api,
            start_lpn=20_000 + index * AREA_PAGES,
            area_pages=AREA_PAGES,
            segment_bytes=SEGMENT,
            double_buffer=double_buffer,
            entry_ids=(2 * index, 2 * index + 1),
            buffer_base=index * 2 * SEGMENT,
        )

    sql2 = RelationalEngine(engine, fresh_wal(0))
    sql2.create_table("accounts")
    engine.run_process(sql2.recover())

    lsm2 = LSMTree(engine, fresh_wal(1), lsm.storage,
                   memtable_bytes=64 * 1024, rng=platform.rng.fork("lsm2"))
    engine.run_process(lsm2.recover())

    kv2 = MemKV(engine, fresh_wal(2, double_buffer=False))
    engine.run_process(kv2.recover())

    # Every acknowledged write is present with its value or a newer one
    # (values are monotonic per key, so ">=" is the durability contract —
    # a later un-acked write may also have landed).
    def check_sql():
        for key, value in acked["sql"].items():
            row = yield engine.process(sql2.get("accounts", key))
            assert row is not None, f"sql key {key} lost"
            assert row["v"] >= value

    engine.run_process(check_sql())

    def check_lsm():
        for key, value in acked["lsm"].items():
            got = yield engine.process(lsm2.get(key))
            assert got is not None, f"lsm key {key} lost"
            assert got >= value

    engine.run_process(check_lsm())

    state = kv2.snapshot()
    for key, value in acked["kv"].items():
        assert key in state, f"kv key {key} lost"
        assert state[key] >= value

    # The crash interrupted real work on every engine.
    assert acked["sql"] and acked["lsm"] and acked["kv"]
    assert not outcome.workload_finished


def test_three_engines_to_completion_without_crash():
    platform, relational, lsm, memkv = build_system(seed=91)
    engine = platform.engine

    def sql_client():
        for i in range(60):
            txn = relational.begin()
            yield engine.process(relational.insert(txn, "accounts", i, {"v": i}))
            yield engine.process(relational.commit(txn))

    def lsm_client():
        for i in range(60):
            yield engine.process(lsm.put(f"k{i:03d}", bytes([i])))

    def kv_client():
        for i in range(60):
            yield engine.process(memkv.set(f"k{i:03d}", bytes([i])))

    def mixed():
        yield engine.all_of([
            engine.process(sql_client()),
            engine.process(lsm_client()),
            engine.process(kv_client()),
        ])

    engine.run_process(mixed())
    assert relational.row_count("accounts") == 60
    assert len(memkv) == 60

    def check():
        value = yield engine.process(lsm.get("k059"))
        return value

    assert engine.run_process(check()) == bytes([59])
    # All six mapping entries are live, one pair per WAL.
    assert len(platform.device.mapping_table) == 5  # memkv single-buffer: 1


def test_nemesis_soak_campaign():
    """A long composed campaign through the nemesis scheduler: fabric
    degradation, two node crashes (with failovers), a GC storm, a
    partition, and a slow die, with the streaming analyzer checking
    durability the whole way."""
    from repro.nemesis import fault, run_campaign
    from repro.nemesis.campaign import CampaignSpec

    spec = CampaignSpec(
        name="soak-storm",
        seed=777,
        devices=4,
        streams=2,
        clients_per_stream=2,
        duration_us=6000.0,
        drain_us=1000.0,
        faults=(
            fault("degrade", 300.0, factor=4.0, duration_us=1500.0),
            fault("power_loss", 900.0, victim="replica:wal0"),
            fault("gc_storm", 1500.0, victim="primary:wal1",
                  band_pages=64, rewrites=8),
            fault("partition", 2500.0, victim="primary:wal0",
                  duration_us=500.0),
            fault("power_loss", 3600.0, victim="replica:wal1"),
            fault("slow_die", 4200.0, victim="primary:wal0",
                  die_index=0, factor=6.0, duration_us=800.0),
        ),
    )
    result = run_campaign(spec)
    assert result["ok"], result["analysis"]["violations"]
    assert len(result["analysis"]["crashes"]) == 2
    assert result["analysis"]["failovers"] >= 2
    assert sum(result["records_acked"].values()) > 500
    for name, info in result["recovery"].items():
        assert info["checked"], f"stream {name} had no surviving leg"
        assert info["missing"] == 0
        assert info["torn"] == 0
    assert result["sanitizer"]["violations"] == 0
    assert result["sanitizer"]["checks"] > 0
