"""Run-matrix executor: determinism, cache accounting, leg plumbing.

The executor's contract is that *how* a matrix runs — pool width,
snapshot reuse, completion order — never shows in its output: results
and tracer payloads merge in leg order and are byte-identical across
``jobs`` settings.  These tests pin that, plus the snapshot cache's
hit/miss/store accounting and the dotted-path leg model's edges.
"""

import pytest

from repro.bench.legs import ablation_sweep, golden_matrix
from repro.bench.runner import (
    Leg,
    SnapshotCache,
    WarmSpec,
    leg,
    resolve,
    run_legs,
    source_digest,
)

_HERE = "tests.test_runner"


def double(value: int = 0) -> dict:
    return {"value": value * 2}


class TestLegModel:
    def test_leg_constructor_sorts_kwargs(self):
        built = leg("a", "m:f", b=1, a=2)
        assert built.kwargs == (("a", 2), ("b", 1))

    def test_resolve_roundtrip(self):
        assert resolve(f"{_HERE}:double") is double

    def test_resolve_rejects_bare_module_path(self):
        with pytest.raises(ValueError, match="module:function"):
            resolve("repro.bench.legs")

    def test_duplicate_leg_ids_rejected(self):
        legs = [leg("same", f"{_HERE}:double"), leg("same", f"{_HERE}:double")]
        with pytest.raises(ValueError, match="duplicate"):
            run_legs(legs)

    def test_results_merge_in_leg_order(self):
        legs = [leg(f"leg{i}", f"{_HERE}:double", value=i) for i in (3, 1, 2)]
        report = run_legs(legs, jobs=2)
        assert list(report.results) == ["leg3", "leg1", "leg2"]
        assert report.results["leg3"] == {"value": 6}


class TestDeterminism:
    def test_parallel_output_byte_identical_to_serial(self):
        legs = golden_matrix()
        serial = run_legs(legs, jobs=1, reuse_snapshots=False)
        parallel = run_legs(legs, jobs=2, reuse_snapshots=True)
        assert serial.canonical_results() == parallel.canonical_results()

    def test_snapshot_reuse_does_not_change_sweep_output(self):
        legs = ablation_sweep()[:2]
        cold = run_legs(legs, jobs=1, reuse_snapshots=False)
        warm = run_legs(legs, jobs=1, reuse_snapshots=True)
        assert cold.canonical_results() == warm.canonical_results()


class TestSnapshotCache:
    def test_legs_sharing_a_warm_spec_hit_once_per_extra_leg(self):
        legs = ablation_sweep()[:3]
        cache = SnapshotCache()
        run_legs(legs, jobs=1, snapshot_cache=cache)
        assert cache.counters() == {"hits": 2, "misses": 1, "stores": 1}

    def test_disk_cache_survives_a_new_instance(self, tmp_path):
        legs = ablation_sweep()[:1]
        first = SnapshotCache(tmp_path)
        run_legs(legs, jobs=1, snapshot_cache=first)
        assert first.counters() == {"hits": 0, "misses": 1, "stores": 1}
        assert list(tmp_path.glob("*.snapshot"))

        second = SnapshotCache(tmp_path)
        report = run_legs(legs, jobs=1, snapshot_cache=second)
        assert second.counters() == {"hits": 1, "misses": 0, "stores": 0}
        assert report.cache == {"hits": 1, "misses": 0, "stores": 0}

    def test_key_depends_on_warm_kwargs_and_source_digest(self):
        cache = SnapshotCache()
        warm_a = WarmSpec(build="m:b", warm="m:w", kwargs=(("seed", 1),))
        warm_b = WarmSpec(build="m:b", warm="m:w", kwargs=(("seed", 2),))
        assert cache.key(warm_a) != cache.key(warm_b)
        assert cache.key(warm_a) == cache.key(warm_a)
        assert source_digest() in {source_digest()}  # memoized, stable

    def test_report_carries_wall_seconds_and_jobs(self):
        report = run_legs([leg("one", f"{_HERE}:double", value=4)], jobs=1)
        assert report.jobs == 1
        assert report.wall_seconds >= 0.0
        assert isinstance(report.results["one"], dict)


class TestWarmLegs(object):
    def test_plain_and_warm_legs_mix_in_one_matrix(self):
        legs = [leg("plain", f"{_HERE}:double", value=5)] + ablation_sweep()[:1]
        report = run_legs(legs, jobs=1)
        assert report.results["plain"] == {"value": 10}
        sweep_id = legs[1].leg_id
        assert report.results[sweep_id]["stats"]

    def test_warm_spec_is_frozen_and_hashable(self):
        warm = WarmSpec(build="m:b", warm="m:w", kwargs=(("k", 1),))
        assert {warm: "ok"}[warm] == "ok"
        with pytest.raises(AttributeError):
            warm.build = "other"  # type: ignore[misc]

    def test_leg_is_frozen(self):
        built = Leg(leg_id="x", fn="m:f")
        with pytest.raises(AttributeError):
            built.fn = "m:g"  # type: ignore[misc]
