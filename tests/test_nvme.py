"""Tests for the NVMe queue-pair layer."""

import pytest

from repro.ssd import (
    CompletionMode,
    NvmeCommand,
    NvmeOpcode,
    NvmeQueuePair,
    ULL_SSD,
)
from tests.helpers import Platform


def make_qp(depth=8, mode=CompletionMode.INTERRUPT):
    platform = Platform(seed=41)
    device = platform.add_block_ssd(ULL_SSD, seed=42)
    return platform, device, NvmeQueuePair(platform.engine, device,
                                           depth=depth, completion_mode=mode)


class TestCommands:
    def test_write_read_roundtrip(self):
        platform, device, qp = make_qp()
        engine = platform.engine

        def scenario():
            yield engine.process(qp.write(5, b"nvme payload"))
            return (yield engine.process(qp.read(5, 12)))

        assert engine.run_process(scenario()) == b"nvme payload"

    def test_flush_counts(self):
        platform, device, qp = make_qp()
        platform.engine.run_process(qp.flush())
        assert device.stats.flushes == 1
        assert qp.stats.completed == 1

    def test_invalid_commands_rejected(self):
        with pytest.raises(ValueError, match="carry data"):
            NvmeCommand(NvmeOpcode.WRITE, 0)
        with pytest.raises(ValueError, match="positive size"):
            NvmeCommand(NvmeOpcode.READ, 0, 0)
        with pytest.raises(ValueError, match="depth"):
            make_qp(depth=0)

    def test_command_adds_queue_overheads(self):
        platform, device, qp = make_qp()
        engine = platform.engine
        engine.run_process(qp.read(0, 4096))
        overhead = (qp.SQ_ENTRY_LATENCY + qp.DOORBELL_LATENCY
                    + qp.INTERRUPT_LATENCY)
        assert engine.now == pytest.approx(
            ULL_SSD.read_latency(4096) + overhead, rel=0.01)


class TestQueueDepth:
    def _throughput(self, depth, ios=32):
        platform, device, qp = make_qp(depth=depth)
        engine = platform.engine

        def client(i):
            yield engine.process(qp.read(i, 4096))

        def scenario():
            procs = [engine.process(client(i)) for i in range(ios)]
            yield engine.all_of(procs)

        engine.run_process(scenario())
        return ios * 4096 / engine.now

    def test_bandwidth_scales_with_depth(self):
        qd1 = self._throughput(1)
        qd8 = self._throughput(8)
        assert qd8 > 4 * qd1

    def test_depth_bounds_inflight(self):
        platform, device, qp = make_qp(depth=2)
        engine = platform.engine
        max_inflight = []

        def client(i):
            yield engine.process(qp.read(i, 4096))
            max_inflight.append(qp._slots.in_use)

        def scenario():
            procs = [engine.process(client(i)) for i in range(6)]
            yield engine.all_of(procs)

        engine.run_process(scenario())
        assert qp.stats.completed == 6
        assert all(count <= 2 for count in max_inflight)


class TestCompletionModes:
    def test_polling_has_lower_latency_than_interrupt(self):
        p_int, d_int, qp_int = make_qp(mode=CompletionMode.INTERRUPT)
        p_int.engine.run_process(qp_int.read(0, 512))
        interrupt_latency = p_int.engine.now

        p_poll, d_poll, qp_poll = make_qp(mode=CompletionMode.POLLING)
        p_poll.engine.run_process(qp_poll.read(0, 512))
        polling_latency = p_poll.engine.now

        assert polling_latency < interrupt_latency
        assert interrupt_latency - polling_latency == pytest.approx(
            qp_int.INTERRUPT_LATENCY - qp_poll.POLL_INTERVAL / 2, rel=0.01)

    def test_stats_track_mode(self):
        platform, device, qp = make_qp(mode=CompletionMode.POLLING)
        platform.engine.run_process(qp.read(0, 512))
        assert qp.stats.poll_spins == 1
        assert qp.stats.interrupts == 0
