"""End-to-end test of ``repro trace`` and the exporter round trips.

Runs the CLI against a tiny YCSB workload, exports JSON and CSV,
re-loads both, and cross-checks the exported counters against an
identical programmatic run and against ``collect_stats`` — the
simulation is deterministic per seed, so the numbers must agree exactly.
"""

import json

import pytest

from repro.bench.experiments import run_trace_workload
from repro.cli import main
from repro.obs.export import snapshot_from_csv, snapshot_from_json
from repro.observability import collect_stats, tracing_stats

OPS = 500   # what `trace --quick` runs
SEED = 40


@pytest.fixture(scope="module")
def reference():
    """A programmatic run identical to what the CLI executes."""
    return run_trace_workload(ops=OPS, seed=SEED)


class TestTraceCli:
    @pytest.fixture()
    def exported(self, tmp_path, capsys):
        json_path = tmp_path / "trace.json"
        csv_path = tmp_path / "trace.csv"
        code = main(["trace", "--quick", "--json", str(json_path),
                     "--csv", str(csv_path)])
        return code, json_path, csv_path, capsys.readouterr().out

    def test_cli_runs_and_prints_span_table(self, exported):
        code, _json_path, _csv_path, out = exported
        assert code == 0
        assert "Per-span latency" in out
        for span in ("core.api.ba_sync", "wal.ba.commit", "host.cpu.wc_flush"):
            assert span in out
        assert "pcie.link.posted_writes" in out  # counters table

    def test_json_export_matches_identical_run(self, exported, reference):
        _code, json_path, _csv_path, _out = exported
        loaded = snapshot_from_json(json_path.read_text())
        assert loaded == tracing_stats(reference["tracer"])

    def test_csv_export_round_trips_summaries(self, exported, reference):
        _code, _json_path, csv_path, _out = exported
        restored = snapshot_from_csv(csv_path.read_text())
        section = tracing_stats(reference["tracer"])
        assert restored["counters"] == section["counters"]
        assert set(restored["histograms"]) == set(section["histograms"])
        for name, hist in section["histograms"].items():
            back = restored["histograms"][name]
            assert back["count"] == hist["count"]
            assert back["p99"] == pytest.approx(hist["p99"])

    def test_list_advertises_trace(self, capsys):
        assert main(["list"]) == 0
        assert "trace" in capsys.readouterr().out


class TestCounterAgreement:
    def test_counters_match_collect_stats(self, reference):
        """Tracer counters and the platform's own stats count the same events."""
        report = collect_stats(reference["platform"], reference["tracer"])
        counters = report["tracing"]["counters"]
        # Every posted PCIe write happened inside the traced region.
        assert counters["pcie.link.posted_writes"] == report["pcie"]["posted_writes"]
        # Span sample counts line up with the platform counters too: each
        # BA_SYNC does one write-verify read over the link.
        histograms = report["tracing"]["histograms"]
        assert (histograms["core.api.ba_sync"]["count"]
                == histograms["host.cpu.write_verify_read"]["count"])

    def test_collect_stats_includes_tracing_only_when_present(self, reference):
        with_tracer = collect_stats(reference["platform"], reference["tracer"])
        assert "tracing" in with_tracer
        without = collect_stats(reference["platform"])
        assert "tracing" not in without  # global tracer untouched by the run

    def test_deterministic_across_runs(self, reference):
        again = run_trace_workload(ops=OPS, seed=SEED)
        assert tracing_stats(again["tracer"]) == tracing_stats(reference["tracer"])
        assert again["result"].operations == reference["result"].operations
        assert again["result"].elapsed_seconds == pytest.approx(
            reference["result"].elapsed_seconds)

    def test_json_section_is_valid_json_of_expected_shape(self, reference):
        section = tracing_stats(reference["tracer"])
        decoded = json.loads(json.dumps(section))
        assert set(decoded) == {"histograms", "counters"}
        for payload in decoded["histograms"].values():
            assert payload["count"] == sum(payload["buckets"].values())
            assert payload["p50"] <= payload["p99"] <= payload["max"]
