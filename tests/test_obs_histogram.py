"""Unit tests for the observability histograms and span machinery.

Covers the math the benchmark drivers now rely on: geometric bucket
boundaries, exact-percentile edge cases (one sample, all-equal),
snapshot merging, exporter round-trips, and the zero-cost contract of
disabled-mode spans.
"""

import pytest

from repro.obs import (
    DEFAULT_BOUNDS,
    HistogramSnapshot,
    LatencyHistogram,
    Tracer,
    snapshot_from_csv,
    snapshot_from_json,
    snapshot_to_csv,
    snapshot_to_json,
    tracing,
)
from repro.obs.histogram import geometric_bounds
from repro.sim import Engine


class TestBucketBoundaries:
    def test_default_bounds_cover_1ns_to_1000s(self):
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-9)
        assert DEFAULT_BOUNDS[-1] == pytest.approx(1e3)
        # 12 decades x 32 buckets/decade, fence-post inclusive.
        assert len(DEFAULT_BOUNDS) == 12 * 32 + 1

    def test_bounds_are_strictly_increasing_geometric(self):
        ratio = 10 ** (1 / 32)
        for a, b in zip(DEFAULT_BOUNDS, DEFAULT_BOUNDS[1:]):
            assert b > a
            assert b / a == pytest.approx(ratio)

    def test_bucket_index_at_exact_boundaries(self):
        h = LatencyHistogram()
        assert h.bucket_index(0.0) == 0                      # underflow
        assert h.bucket_index(DEFAULT_BOUNDS[0] / 2) == 0
        # A value exactly on a boundary belongs to the bucket starting there.
        assert h.bucket_index(DEFAULT_BOUNDS[0]) == 1
        assert h.bucket_index(DEFAULT_BOUNDS[7]) == 8
        assert h.bucket_index(DEFAULT_BOUNDS[-1]) == len(DEFAULT_BOUNDS)  # overflow
        assert h.bucket_index(1e9) == len(DEFAULT_BOUNDS)

    def test_bucket_range_brackets_recorded_value(self):
        h = LatencyHistogram()
        for value in (3.7e-6, 1e-9, 0.25, 999.0, 5e3):
            index = h.bucket_index(value)
            lo, hi = h.snapshot().bucket_range(index)
            assert lo <= value < hi

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram([1e-6, 1e-6])        # not strictly increasing
        with pytest.raises(ValueError):
            LatencyHistogram([0.0, 1e-6])         # non-positive boundary
        with pytest.raises(ValueError):
            geometric_bounds(low=1e-3, high=1e-6)

    def test_negative_latency_rejected(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.record(-1e-9)


class TestPercentileEdgeCases:
    def test_single_sample_answers_every_percentile_exactly(self):
        h = LatencyHistogram()
        h.record(3.3e-6)
        for pct in (0, 1, 50, 90, 99, 99.9, 100):
            assert h.percentile(pct) == pytest.approx(3.3e-6, abs=0.0)
        assert h.mean == pytest.approx(3.3e-6)
        assert h.maximum == pytest.approx(3.3e-6)

    def test_all_equal_samples_are_exact(self):
        h = LatencyHistogram()
        for _ in range(1000):
            h.record(7.25e-5)
        summary = h.summary()
        # Percentiles clamp to the exact [min, max] band, so all-equal
        # samples come back bit-exact; the mean accumulates float error.
        for key in ("p50", "p90", "p95", "p99", "p999", "max"):
            assert summary[key] == pytest.approx(7.25e-5, abs=0.0)
        assert summary["mean"] == pytest.approx(7.25e-5, rel=1e-12)

    def test_percentiles_clamped_to_min_and_max(self):
        h = LatencyHistogram()
        h.record(1e-6)
        h.record(1e-3)
        assert h.percentile(0) == pytest.approx(1e-6)
        assert h.percentile(100) == pytest.approx(1e-3)

    def test_percentiles_monotonic_and_within_bucket_error(self):
        h = LatencyHistogram()
        samples = [i * 1e-6 for i in range(1, 501)]
        for s in samples:
            h.record(s)
        previous = 0.0
        for pct in (10, 25, 50, 75, 90, 95, 99, 99.9):
            value = h.percentile(pct)
            assert value >= previous
            previous = value
            exact = samples[min(int(pct / 100 * len(samples)), len(samples) - 1)]
            # A bucket spans 10^(1/32) ~ 7.5%; interpolation stays inside.
            assert value == pytest.approx(exact, rel=0.08)

    def test_empty_histogram_raises(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.percentile(50)
        with pytest.raises(ValueError):
            _ = h.mean
        with pytest.raises(ValueError):
            h.snapshot().percentile(50)

    def test_out_of_range_percentile_rejected(self):
        h = LatencyHistogram()
        h.record(1e-6)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)


class TestSnapshotMerge:
    def test_merge_equals_recording_into_one(self):
        a, b, both = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for i in range(200):
            value = (i + 1) * 2.5e-7
            (a if i % 2 else b).record(value)
            both.record(value)
        merged = a.snapshot().merge(b.snapshot())
        reference = both.snapshot()
        assert merged.counts == reference.counts
        assert merged.count == reference.count
        assert merged.total == pytest.approx(reference.total)
        assert merged.minimum == reference.minimum
        assert merged.maximum == reference.maximum
        for pct in (50, 95, 99, 99.9):
            assert merged.percentile(pct) == reference.percentile(pct)

    def test_merge_with_empty_is_identity(self):
        a = LatencyHistogram()
        a.record(5e-6)
        empty = LatencyHistogram().snapshot()
        assert a.snapshot().merge(empty) == a.snapshot()
        assert empty.merge(a.snapshot()) == a.snapshot()

    def test_merge_rejects_mismatched_bounds(self):
        a = LatencyHistogram().snapshot()
        b = LatencyHistogram(geometric_bounds(per_decade=8)).snapshot()
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_counts_must_be_consistent(self):
        with pytest.raises(ValueError):
            HistogramSnapshot(bounds=(1e-6, 1e-3), counts=(0, 1, 0), count=2,
                              total=1e-6, minimum=1e-6, maximum=1e-6)
        with pytest.raises(ValueError):
            HistogramSnapshot(bounds=(1e-6, 1e-3), counts=(0, 1), count=1,
                              total=1e-6, minimum=1e-6, maximum=1e-6)

    def test_dict_round_trip_preserves_percentiles(self):
        h = LatencyHistogram()
        for i in range(100):
            h.record((i + 1) * 1e-6)
        original = h.snapshot()
        restored = HistogramSnapshot.from_dict(original.to_dict())
        assert restored.counts == original.counts
        assert restored.percentile(99) == original.percentile(99)

    def test_from_snapshot_continues_recording(self):
        h = LatencyHistogram()
        h.record(1e-6)
        clone = LatencyHistogram.from_snapshot(h.snapshot())
        clone.record(2e-6)
        assert len(clone) == 2
        assert clone.maximum == pytest.approx(2e-6)
        assert len(h) == 1  # the source is untouched


class TestDisabledModeSpans:
    def test_disabled_spans_share_a_noop_and_record_nothing(self):
        engine = Engine()
        assert not tracing.enabled
        first = tracing.span("test.span", engine)
        second = tracing.span("other.span", engine)
        assert first is second  # the shared no-op: zero allocation per call
        tracer = tracing.get_tracer()
        before = dict(tracer.histograms)
        with tracing.span("test.span", engine):
            pass
        assert tracer.histograms == before

    def test_activated_scopes_the_flag_and_tracer(self):
        engine = Engine()
        outer = tracing.get_tracer()
        with tracing.activated() as tracer:
            assert tracing.enabled
            assert tracing.get_tracer() is tracer

            def work():
                with tracing.span("test.timed", engine):
                    yield engine.timeout(2e-6)
                return None

            engine.run_process(work())
        assert not tracing.enabled
        assert tracing.get_tracer() is outer
        assert "test.timed" not in outer.histograms
        assert tracer.histograms["test.timed"].percentile(50) == pytest.approx(2e-6)

    def test_span_measures_simulated_time(self):
        engine = Engine()
        with tracing.activated() as tracer:

            def work():
                for delay in (1e-6, 3e-6, 5e-6):
                    with tracing.span("test.delay", engine):
                        yield engine.timeout(delay)
                return None

            engine.run_process(work())
        snapshot = tracer.histograms["test.delay"].snapshot()
        assert snapshot.count == 3
        assert snapshot.minimum == pytest.approx(1e-6)
        assert snapshot.maximum == pytest.approx(5e-6)

    def test_counters_accumulate_and_reset(self):
        tracer = Tracer()
        tracer.count("x")
        tracer.count("x", 4)
        assert tracer.counters == {"x": 5}
        tracer.reset()
        assert tracer.counters == {}
        assert tracer.histograms == {}

    def test_merged_snapshot_by_prefix(self):
        tracer = Tracer()
        tracer.observe("wal.ba.commit", 1e-6)
        tracer.observe("wal.block.commit", 3e-6)
        tracer.observe("nand.array.read", 9e-6)
        merged = tracer.merged_snapshot("wal.")
        assert merged.count == 2
        assert merged.maximum == pytest.approx(3e-6)
        with pytest.raises(KeyError):
            tracer.merged_snapshot("pcie.")


class TestExporters:
    @pytest.fixture()
    def section(self):
        tracer = Tracer()
        for i in range(50):
            tracer.observe("a.span", (i + 1) * 1e-6)
        tracer.observe("b.span", 4e-3)
        tracer.count("a.counter", 7)
        return tracer.snapshot()

    def test_json_round_trip_is_lossless(self, section):
        restored = snapshot_from_json(snapshot_to_json(section))
        assert restored == section

    def test_json_rejects_non_snapshots(self):
        with pytest.raises(ValueError):
            snapshot_from_json("{}")

    def test_csv_round_trip_preserves_summaries(self, section):
        restored = snapshot_from_csv(snapshot_to_csv(section))
        assert restored["counters"] == section["counters"]
        for name, hist in section["histograms"].items():
            back = restored["histograms"][name]
            assert back["count"] == hist["count"]
            for key in ("min", "max", "mean", "p50", "p95", "p99", "p999"):
                assert back[key] == pytest.approx(hist[key])
