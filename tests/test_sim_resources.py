"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Engine, Resource, SimulationError, Store


def test_resource_serializes_contenders():
    engine = Engine()
    res = Resource(engine, capacity=1)
    finish_times = []

    def worker():
        req = res.request()
        yield req
        yield engine.timeout(1.0)
        res.release(req)
        finish_times.append(engine.now)

    for _ in range(3):
        engine.process(worker())
    engine.run()
    assert finish_times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_resource_capacity_allows_parallelism():
    engine = Engine()
    res = Resource(engine, capacity=2)
    finish_times = []

    def worker():
        req = res.request()
        yield req
        yield engine.timeout(1.0)
        res.release(req)
        finish_times.append(engine.now)

    for _ in range(4):
        engine.process(worker())
    engine.run()
    assert finish_times == [
        pytest.approx(1.0),
        pytest.approx(1.0),
        pytest.approx(2.0),
        pytest.approx(2.0),
    ]


def test_resource_fifo_ordering():
    engine = Engine()
    res = Resource(engine, capacity=1)
    order = []

    def worker(tag, start_delay):
        yield engine.timeout(start_delay)
        req = res.request()
        yield req
        order.append(tag)
        yield engine.timeout(10.0)
        res.release(req)

    engine.process(worker("first", 0.0))
    engine.process(worker("second", 1.0))
    engine.process(worker("third", 2.0))
    engine.run()
    assert order == ["first", "second", "third"]


def test_acquire_helper_releases_on_exception():
    engine = Engine()
    res = Resource(engine, capacity=1)

    def failing_work():
        yield engine.timeout(0.1)
        raise ValueError("inner failure")

    def ok_work():
        yield engine.timeout(0.1)
        return "ok"

    def parent():
        try:
            yield engine.process(res.acquire(failing_work()))
        except ValueError:
            pass
        result = yield engine.process(res.acquire(ok_work()))
        return result

    assert engine.run_process(parent()) == "ok"
    assert res.in_use == 0


def test_release_wrong_resource_rejected():
    engine = Engine()
    res_a = Resource(engine, capacity=1)
    res_b = Resource(engine, capacity=1)
    req = res_a.request()
    with pytest.raises(SimulationError):
        res_b.release(req)


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Engine(), capacity=0)


def test_store_put_then_get():
    engine = Engine()
    store = Store(engine)
    store.put("a")
    store.put("b")

    def getter():
        first = yield store.get()
        second = yield store.get()
        return [first, second]

    assert engine.run_process(getter()) == ["a", "b"]


def test_store_get_blocks_until_put():
    engine = Engine()
    store = Store(engine)

    def producer():
        yield engine.timeout(2.0)
        store.put("late")

    def consumer():
        item = yield store.get()
        return item, engine.now

    engine.process(producer())
    item, now = engine.run_process(consumer())
    assert item == "late"
    assert now == pytest.approx(2.0)


def test_store_multiple_blocked_getters_fifo():
    engine = Engine()
    store = Store(engine)
    received = []

    def consumer(tag):
        item = yield store.get()
        received.append((tag, item))

    engine.process(consumer("g1"))
    engine.process(consumer("g2"))

    def producer():
        yield engine.timeout(1.0)
        store.put("x")
        store.put("y")

    engine.process(producer())
    engine.run()
    assert received == [("g1", "x"), ("g2", "y")]


class TestRetire:
    def test_release_on_retired_resource_is_inert(self):
        engine = Engine()
        old = Resource(engine, capacity=1)
        request = old.request()
        old.retire()
        replacement = Resource(engine, capacity=1)
        # Zombie cleanup releasing an old grant against the replacement
        # must not corrupt the replacement's accounting.
        replacement.release(request)
        assert replacement.in_use == 0
        fresh = replacement.request()
        assert fresh.triggered

    def test_retired_resource_ignores_own_release(self):
        engine = Engine()
        resource = Resource(engine)
        request = resource.request()
        resource.retire()
        resource.release(request)  # must not raise

    def test_live_resources_still_validate_ownership(self):
        engine = Engine()
        a = Resource(engine)
        b = Resource(engine)
        request = a.request()
        with pytest.raises(SimulationError):
            b.release(request)
