"""Tests for the benchmark drivers and experiment harness (fast variants)."""

import pytest

from repro.bench.drivers import (
    RunResult,
    run_linkbench_on_relational,
    run_ycsb_on_lsm,
    run_ycsb_on_memkv,
)
from repro.bench.experiments import run_table1
from repro.bench.tables import format_series, format_size, format_table, format_us
from repro.db.lsm import LSMTree, MemoryTableStorage
from repro.db.memkv import MemKV
from repro.db.relational import RelationalEngine
from repro.platform import Platform
from repro.sim.units import MiB
from repro.ssd import ULL_SSD
from repro.wal import BaWAL, BlockWAL
from repro.workloads import LinkbenchConfig, LinkbenchWorkload, YcsbConfig, YcsbWorkload


def lsm_setup(seed=3):
    platform = Platform(seed=seed)
    device = platform.add_block_ssd(ULL_SSD, name="log")
    wal = BlockWAL(platform.engine, device, platform.cpu, area_pages=8192)
    tree = LSMTree(platform.engine, wal, MemoryTableStorage(platform.engine),
                   memtable_bytes=1 * MiB, rng=platform.rng.fork("lsm"))
    workload = YcsbWorkload(YcsbConfig.workload_a(record_count=100),
                            platform.rng.fork("ycsb").stream("ops"))
    return platform, tree, workload


class TestDrivers:
    def test_lsm_driver_produces_sane_result(self):
        platform, tree, workload = lsm_setup()
        result = run_ycsb_on_lsm(platform.engine, tree, workload, 200, clients=4)
        assert isinstance(result, RunResult)
        assert result.operations == 200
        assert result.elapsed_seconds > 0
        assert result.throughput > 0
        assert result.mean_commit_latency > 0

    def test_lsm_driver_deterministic_across_seeds(self):
        results = []
        for _ in range(2):
            platform, tree, workload = lsm_setup(seed=3)
            results.append(run_ycsb_on_lsm(platform.engine, tree, workload,
                                           150, clients=2).throughput)
        assert results[0] == pytest.approx(results[1])

    def test_memkv_driver(self):
        platform = Platform(seed=4)
        device = platform.add_block_ssd(ULL_SSD, name="log")
        wal = BlockWAL(platform.engine, device, platform.cpu, area_pages=8192)
        store = MemKV(platform.engine, wal)
        workload = YcsbWorkload(YcsbConfig.workload_a(record_count=80),
                                platform.rng.fork("ycsb").stream("ops"))
        result = run_ycsb_on_memkv(platform.engine, store, workload, 150, clients=3)
        assert result.operations == 150
        assert len(store) >= 80

    def test_linkbench_driver_on_ba_wal(self):
        platform = Platform(seed=5)
        wal = BaWAL(platform.engine, platform.api, area_pages=8192)
        platform.engine.run_process(wal.start())
        db = RelationalEngine(platform.engine, wal)
        workload = LinkbenchWorkload(LinkbenchConfig(node_count=60),
                                     platform.rng.fork("lb").stream("ops"))
        result = run_linkbench_on_relational(platform.engine, db, workload,
                                             150, clients=4)
        assert result.operations == 150
        assert db.row_count("node") > 0
        assert db.row_count("link") > 0

    def test_more_clients_increase_throughput(self):
        platform, tree, workload = lsm_setup(seed=6)
        single = run_ycsb_on_lsm(platform.engine, tree, workload, 150,
                                 clients=1).throughput
        platform, tree, workload = lsm_setup(seed=6)
        quad = run_ycsb_on_lsm(platform.engine, tree, workload, 150,
                               clients=4).throughput
        assert quad > 1.5 * single

    def test_invalid_driver_args_rejected(self):
        platform, tree, workload = lsm_setup()
        with pytest.raises(ValueError):
            run_ycsb_on_lsm(platform.engine, tree, workload, 0)


class TestTableFormatting:
    def test_format_table_alignment(self):
        text = format_table("Title", ["a", "bb"], [(1, 2.5), (30, "x")])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_format_series_merges_x_values(self):
        text = format_series("S", "x", {"one": {1: 1.0}, "two": {2: 2.0}})
        assert "-" in text  # missing points rendered as dashes

    def test_format_size(self):
        assert format_size(8) == "8B"
        assert format_size(4096) == "4KiB"
        assert format_size(1536) == "1.5KiB"
        assert format_size(16 * 1024 * 1024) == "16MiB"

    def test_format_us(self):
        assert format_us(1.5e-6) == "1.50us"

    def test_run_table1_contains_paper_constants(self):
        spec = run_table1()
        assert spec["BA-buffer size"] == "8 MiB"
        assert spec["Max. entries of BA-buffer"] == 8
