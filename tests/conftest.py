"""Shared pytest configuration for the tier-1 suite."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "soak: long whole-system soak tests (deselect with -m \"not soak\")",
    )
    config.addinivalue_line(
        "markers",
        "perf: wall-clock performance measurements (deselect with -m \"not perf\")",
    )
