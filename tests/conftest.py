"""Shared pytest configuration for the tier-1 suite."""

import pytest

from repro.analysis import sanitizer as simsan
from repro.platform import Platform


@pytest.fixture
def sanitized_device():
    """A full :class:`Platform` running under the runtime sanitizer.

    Every die access, durability step, and mapping-table mutation is
    invariant-checked; violations raise :class:`SanitizerError` at the
    offending simulated instant.  The sanitizer state is restored on
    teardown so other tests see it disabled.
    """
    with simsan.activated() as state:
        platform = Platform(seed=1234)
        platform.sanitizer_state = state
        yield platform


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "soak: long whole-system soak tests (deselect with -m \"not soak\")",
    )
    config.addinivalue_line(
        "markers",
        "perf: wall-clock performance measurements (deselect with -m \"not perf\")",
    )
