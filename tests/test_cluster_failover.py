"""Failover durability sweeps: acked records survive every crash time.

The cluster contract mirrors the single-device crash tests one level up:
whatever a quorum commit acknowledged before a node died must come back
after promotion, and nothing the recovered log returns may be garbage —
every record is a payload some client actually appended, in per-client
sequence order.  We sweep the crash instant across the workload for both
victim roles (primary's node, replica's node), and separately sweep a
*second* crash across the failover itself — the staged-promotion path
that makes a half-finished replay harmless.
"""

import pytest

from repro.cluster import (
    ClusterCrashHarness,
    DevicePool,
    FailoverManager,
    run_replicated_logging,
)
from repro.cluster.driver import make_payload, open_streams, spawn_clients
from repro.core import BaParams
from repro.sim.units import KiB, USEC

SMALL_BA = BaParams(buffer_bytes=64 * KiB)
PAYLOAD_BYTES = 256


def crashy_pool(seed):
    return DevicePool(devices=4, seed=seed, ba_params=SMALL_BA,
                      area_pages=64)


def start_workload(pool, records=24, clients=2):
    """Open one RF=2 stream and start closed-loop clients on it."""
    streams = open_streams(pool, streams=1, replicas=2)
    acked = {}
    spawn_clients(pool, streams, clients_per_stream=clients,
                  records_per_client=records, payload_bytes=PAYLOAD_BYTES,
                  acked=acked)
    return streams["wal0"], acked


def parse_payload(payload):
    """(client, seq) from a driver payload; raises on garbage."""
    stream, client, seq, _pad = payload.split(b":", 3)
    assert stream == b"wal0"
    return int(client[1:]), int(seq[1:])


def check_durability(acked, recovered):
    """The two-sided contract for one crash point."""
    acked_set = {payload for _t, payload in acked.get("wal0", [])}
    recovered_set = set(recovered)
    lost = acked_set - recovered_set
    assert not lost, f"{len(lost)} acked records lost"
    # No garbage: every recovered record parses, and per client the
    # sequence numbers form a gapless prefix (a torn or resurrected
    # record would break one or the other).
    seqs = {}
    for payload in recovered:
        client, seq = parse_payload(payload)
        seqs.setdefault(client, []).append(seq)
    for client, seen in seqs.items():
        assert seen == list(range(len(seen))), (client, seen)


class TestAcceptanceScenario:
    def test_primary_kill_on_4_device_rf2_pool_loses_nothing(self):
        pool = crashy_pool(seed=71)
        stream, acked = start_workload(pool)
        victim = stream.primary.node.name
        harness = ClusterCrashHarness(pool)
        harness.crash_node_at(victim, crash_time=40 * USEC)
        # The crash landed mid-stream: some but not all records were acked.
        assert 0 < len(acked["wal0"]) < 2 * 24
        result = pool.engine.run_process(FailoverManager(pool).fail_over("wal0"))
        assert result.promoted != victim
        check_durability(acked, result.recovered)
        # The promoted stream is live: more records commit at quorum.
        new_stream = pool.streams["wal0"]
        assert new_stream is result.stream

        def more():
            lsn = yield pool.engine.process(
                new_stream.append(make_payload("post", 9, 0, PAYLOAD_BYTES)))
            yield pool.engine.process(new_stream.commit(lsn))
            return lsn

        lsn = pool.engine.run_process(more())
        assert new_stream.durable_lsn == lsn


class TestCrashSweep:
    @pytest.mark.parametrize("crash_us", [3, 11, 29, 47, 83, 140, 260, 900])
    @pytest.mark.parametrize("role", ["primary", "replica"])
    def test_no_acked_record_lost_at_any_crash_time(self, crash_us, role):
        pool = crashy_pool(seed=1000 + crash_us)
        stream, acked = start_workload(pool)
        leg = stream.primary if role == "primary" else stream.replica_legs[0]
        harness = ClusterCrashHarness(pool)
        harness.crash_node_at(leg.node.name, crash_time=crash_us * USEC)
        result = pool.engine.run_process(FailoverManager(pool).fail_over("wal0"))
        check_durability(acked, result.recovered)


class TestCrashDuringFailover:
    @pytest.mark.parametrize("second_crash_us", [1, 5, 12, 25, 60])
    def test_spare_crash_mid_promotion_then_retry(self, second_crash_us):
        """Kill the primary, start the failover, kill the *spare* while the
        promotion is in flight, then retry.  The staged swap means the
        retry re-recovers the complete old log from the survivor."""
        pool = crashy_pool(seed=2000 + second_crash_us)
        stream, acked = start_workload(pool)
        harness = ClusterCrashHarness(pool)
        harness.crash_node_at(stream.primary.node.name, crash_time=60 * USEC)
        manager = FailoverManager(pool)
        survivor = stream.replica_legs[0].node.name
        attempt = pool.engine.process(manager.fail_over("wal0"))
        pool.engine.run(until=pool.engine.now + second_crash_us * USEC)
        if attempt.processed:
            # Promotion already done; the second crash hits the new spare
            # of a *complete* stream — a plain second failover.
            second_victim = attempt.value.spare
        else:
            second_victim = pool.streams["wal0@promote"].replica_legs[0].node.name \
                if "wal0@promote" in pool.streams else \
                next(node.name for node in pool.up_nodes()
                     if node.name != survivor)
        harness.crash_node_at(second_victim, crash_time=0.0)
        result = pool.engine.run_process(manager.fail_over("wal0"))
        assert result.promoted == survivor
        check_durability(acked, result.recovered)

    def test_stale_staging_stream_is_cleaned_up(self):
        pool = crashy_pool(seed=3000)
        stream, acked = start_workload(pool)
        harness = ClusterCrashHarness(pool)
        harness.crash_node_at(stream.primary.node.name, crash_time=60 * USEC)
        manager = FailoverManager(pool)
        pool.engine.process(manager.fail_over("wal0"))
        # Let the first attempt stage its stream, then crash its spare.
        pool.engine.run(until=pool.engine.now + 12 * USEC)
        if "wal0@promote" in pool.streams:
            spare = pool.streams["wal0@promote"].replica_legs[0].node.name
            harness.crash_node_at(spare, crash_time=0.0)
            result = pool.engine.run_process(manager.fail_over("wal0"))
            assert "wal0@promote" not in pool.streams
            check_durability(acked, result.recovered)


class TestFallbackLegRecovery:
    def test_block_path_survivor_can_be_promoted(self):
        # Exhaust the replica node's BA pairs so the stream's replica leg
        # is a block WAL, then kill the primary: promotion must recover
        # from the block leg.
        pool = crashy_pool(seed=4000)
        for i in range(4):
            pool.engine.run_process(pool.open_stream(
                f"filler{i}", replicas=1, on_nodes=["node1"]))
        pool.engine.run_process(pool.open_stream(
            "wal0", replicas=2, on_nodes=["node0", "node1"]))
        acked = {}
        spawn_clients(pool, {"wal0": pool.streams["wal0"]},
                      clients_per_stream=2, records_per_client=16,
                      payload_bytes=PAYLOAD_BYTES, acked=acked)
        harness = ClusterCrashHarness(pool)
        harness.crash_node_at("node0", crash_time=50 * USEC)
        result = pool.engine.run_process(
            FailoverManager(pool).fail_over("wal0"))
        assert result.source_kind == "block"
        assert result.promoted == "node1"
        check_durability(acked, result.recovered)


class TestWorkloadCompletion:
    def test_run_replicated_logging_without_crash(self):
        pool = crashy_pool(seed=5000)
        result = run_replicated_logging(pool, streams=2, clients_per_stream=2,
                                        records_per_client=6, replicas=2,
                                        payload_bytes=PAYLOAD_BYTES)
        assert result.records_acked == 24
        for stream in pool.streams.values():
            assert stream.durable_lsn == stream.tail_lsn
