"""Wire-protocol tests: frame round-trips, chunking, adversarial input."""

import pytest

from repro.db.memkv.commands import (
    Command,
    Reply,
    decode_reply,
    encode_command,
    encode_reply,
)
from repro.gateway.protocol import (
    MAX_FRAME_BYTES,
    MAX_KEY_BYTES,
    FrameDecoder,
    ProtocolError,
    decode_reply_frame,
    decode_request,
    encode_frame,
    encode_reply_frame,
    encode_request,
)

REQUESTS = [
    (Command.SET, "k", b"v"),
    (Command.SET, "", b""),
    (Command.GET, "key-with-dashes", b""),
    (Command.DEL, "x" * 100, b""),
    (Command.APPEND, "log", b"\x00\xff" * 500),
    (Command.INCR, "counter", b""),
    (Command.SET, "unicode-éü", "value-☃".encode()),
    (Command.SET, "k" * MAX_KEY_BYTES, b"big" * 1000),
]

REPLIES = [
    (Reply.OK, b""),
    (Reply.OK, b"42"),
    (Reply.VALUE, b"\x00"),
    (Reply.VALUE, b"\x01" + b"payload" * 100),
    (Reply.ERR, b"value is not an integer"),
]


@pytest.mark.parametrize("command,key,value", REQUESTS)
def test_request_roundtrip(command, key, value):
    frame = encode_request(command, key, value)
    decoder = FrameDecoder()
    bodies = decoder.feed(frame)
    assert len(bodies) == 1
    assert decode_request(bodies[0]) == (command, key, value)
    assert decoder.at_frame_boundary()


@pytest.mark.parametrize("reply,payload", REPLIES)
def test_reply_roundtrip(reply, payload):
    frame = encode_reply_frame(reply, payload)
    (body,) = FrameDecoder().feed(frame)
    assert decode_reply_frame(body) == (reply, payload)


@pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, 4096])
def test_decoder_reassembles_across_arbitrary_chunks(chunk_size):
    stream = b"".join(encode_request(cmd, key, value)
                      for cmd, key, value in REQUESTS)
    decoder = FrameDecoder()
    decoded = []
    for start in range(0, len(stream), chunk_size):
        for body in decoder.feed(stream[start:start + chunk_size]):
            decoded.append(decode_request(body))
    assert decoded == REQUESTS
    assert decoder.at_frame_boundary()
    assert decoder.frames_decoded == len(REQUESTS)
    assert decoder.bytes_fed == len(stream)


def test_decoder_interleaves_partial_frames():
    frame = encode_request(Command.SET, "abc", b"def")
    decoder = FrameDecoder()
    assert decoder.feed(frame[:5]) == []
    assert not decoder.at_frame_boundary()
    assert decoder.buffered_bytes() == 5
    (body,) = decoder.feed(frame[5:])
    assert decode_request(body) == (Command.SET, "abc", b"def")


def test_hostile_length_prefix_rejected_before_buffering():
    decoder = FrameDecoder()
    prefix = (MAX_FRAME_BYTES + 1).to_bytes(4, "little")
    with pytest.raises(ProtocolError):
        decoder.feed(prefix)


def test_oversized_body_rejected_on_encode():
    with pytest.raises(ProtocolError):
        encode_frame(b"x" * (MAX_FRAME_BYTES + 1))


def test_empty_request_frame_rejected():
    with pytest.raises(ProtocolError):
        decode_request(b"")


def test_unknown_opcode_rejected():
    body = bytes([0xEE]) + (1).to_bytes(2, "little") + b"k"
    with pytest.raises(ProtocolError):
        decode_request(body)


def test_truncated_request_body_rejected():
    body = encode_command(Command.SET, "key", b"value")
    with pytest.raises(ProtocolError):
        decode_request(body[:3])  # header promises more key than present


def test_oversized_key_rejected():
    body = encode_command(Command.SET, "k" * (MAX_KEY_BYTES + 1), b"")
    with pytest.raises(ProtocolError):
        decode_request(body)


def test_malformed_reply_frame_rejected():
    with pytest.raises(ProtocolError):
        decode_reply_frame(b"")
    with pytest.raises(ProtocolError):
        decode_reply_frame(bytes([99]) + b"payload")


def test_memkv_reply_codec_roundtrip():
    for reply, payload in REPLIES:
        assert decode_reply(encode_reply(reply, payload)) == (reply, payload)


def test_decoder_max_frame_bytes_is_configurable():
    decoder = FrameDecoder(max_frame_bytes=8)
    small = encode_frame(b"tiny")
    (body,) = decoder.feed(small)
    assert body == b"tiny"
    with pytest.raises(ProtocolError):
        decoder.feed(encode_frame(b"way too big"))
