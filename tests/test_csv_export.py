"""Tests for CSV export of benchmark data."""

from repro.bench.csv_export import csv_to_series, series_to_csv, table_to_csv


def test_series_roundtrip():
    series = {"DC": {4096: 1.5e9, 8192: 2.0e9}, "ULL": {4096: 3.2e9}}
    text = series_to_csv("size", series)
    x_label, parsed = csv_to_series(text)
    assert x_label == "size"
    assert parsed["DC"]["4096"] == 1.5e9
    assert parsed["ULL"]["4096"] == 3.2e9
    assert "8192" not in parsed["ULL"]  # missing point stays missing


def test_series_header_order_preserved():
    series = {"b": {1: 1.0}, "a": {1: 2.0}}
    first_line = series_to_csv("x", series).splitlines()[0]
    assert first_line == "x,b,a"


def test_table_to_csv():
    text = table_to_csv(["config", "ops"], [("DC", 100), ("2B", 250)])
    lines = text.strip().splitlines()
    assert lines == ["config,ops", "DC,100", "2B,250"]


def test_csv_from_real_experiment():
    from repro.bench.experiments import run_fig7
    fig7 = run_fig7(iterations=1)
    text = series_to_csv("size_bytes", fig7["read"])
    _label, parsed = csv_to_series(text)
    assert parsed["2B-SSD MMIO read"]["4096"] > parsed["ULL-SSD block read"]["4096"]
