"""Golden determinism: fixed seeds must keep producing bit-identical stats.

The fixtures under ``tests/golden/`` were captured from the seed code
*before* the kernel fast paths and NAND batching landed; every scenario
re-runs the same fixed-seed workload and must serialize to the exact same
bytes.  Any drift means an optimization changed simulated behaviour, not
just wall-clock time.  Regenerate intentionally (and only intentionally)
with ``PYTHONPATH=src python -m repro.bench.golden --update``.
"""

import pytest

from repro.bench import golden


@pytest.mark.parametrize("name", sorted(golden.SCENARIOS))
def test_golden_scenario_is_bit_identical(name):
    path = golden.GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"golden fixture missing: {path} "
        "(generate with: python -m repro.bench.golden --update)"
    )
    assert golden.run_scenario(name) == path.read_text(), (
        f"scenario {name!r} diverged from its golden fixture — an "
        "optimization changed simulated behaviour"
    )
