"""Golden determinism: fixed seeds must keep producing bit-identical stats.

The fixtures under ``tests/golden/`` were captured from the seed code
*before* the kernel fast paths and NAND batching landed; every scenario
re-runs the same fixed-seed workload and must serialize to the exact same
bytes.  Any drift means an optimization changed simulated behaviour, not
just wall-clock time.  Regenerate intentionally (and only intentionally)
with ``PYTHONPATH=src python -m repro.bench.golden --update``.
"""

import pytest

from repro.analysis import sanitizer as simsan
from repro.bench import golden


@pytest.mark.parametrize("name", sorted(golden.SCENARIOS))
def test_golden_scenario_is_bit_identical(name):
    path = golden.GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"golden fixture missing: {path} "
        "(generate with: python -m repro.bench.golden --update)"
    )
    assert golden.run_scenario(name) == path.read_text(), (
        f"scenario {name!r} diverged from its golden fixture — an "
        "optimization changed simulated behaviour"
    )


@pytest.mark.parametrize("name", sorted(golden.SCENARIOS))
def test_golden_scenario_is_bit_identical_under_sanitizer(name):
    """The runtime sanitizer is bookkeeping-only: enabling it must not
    perturb a single simulated byte, and the full-system scenarios must
    produce zero violations (no false positives on correct code)."""
    path = golden.GOLDEN_DIR / f"{name}.json"
    with simsan.activated() as state:
        output = golden.run_scenario(name)
    assert output == path.read_text(), (
        f"scenario {name!r} diverged when the sanitizer was enabled — "
        "a sanitizer hook is changing simulated behaviour"
    )
    assert state.checks > 0, "sanitizer hooks never fired during a full run"
    assert state.violations == 0, (
        f"sanitizer false positives on the golden {name!r} scenario"
    )
