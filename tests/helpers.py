"""Shared test fixtures: assembled platforms (engine + host + devices)."""

from repro.core import BaParams
from repro.platform import Platform as _LibraryPlatform
from repro.ssd import ULL_SSD


class Platform(_LibraryPlatform):
    """Library platform with the seed defaults the tests were written for."""

    def __init__(self, ba_params=None, seed=5):
        super().__init__(ba_params=ba_params, seed=seed)

    def add_block_ssd(self, profile=ULL_SSD, seed=7):
        return super().add_block_ssd(profile, name=f"test-ssd-{seed}")


def small_ba_params(buffer_kib=64, max_entries=8):
    """A small BA-buffer so segment-recycling paths trigger quickly."""
    return BaParams(buffer_bytes=buffer_kib * 1024, max_entries=max_entries)
