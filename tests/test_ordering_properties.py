"""Property tests for the durability-critical ordering invariants.

These are the invariants the paper's §III-B protocol rests on, tested as
properties over arbitrary operation sequences rather than hand-picked
cases:

1. After a write-verify read, every store issued before it is visible in
   device memory (PCIe producer/consumer ordering).
2. Whatever the interleaving of stores, evictions, and flushes, device
   memory never holds bytes that were never stored ("no invention"), and
   flushed prefixes are exact.
3. WC line eviction order is FIFO: if two stores hit different lines and
   the buffer overflows, the older line lands first.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.host import ByteRegion, HostCPU, HostParams
from repro.pcie import PcieLink
from repro.sim import Engine

REGION_BYTES = 2048


def make_host(wc_lines=4):
    engine = Engine()
    link = PcieLink(engine)
    cpu = HostCPU(engine, link, params=HostParams(wc_buffer_lines=wc_lines))
    region = ByteRegion("bar1", REGION_BYTES)
    return engine, link, cpu, region


WRITES = st.lists(
    st.tuples(st.integers(0, REGION_BYTES - 64), st.binary(min_size=1, max_size=64),
              st.booleans()),
    min_size=1, max_size=25,
)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(WRITES)
def test_wvr_makes_all_prior_stores_visible(writes):
    """Invariant 1: store* ; clflush ; mfence ; WVR  =>  all stores landed."""
    engine, link, cpu, region = make_host()
    shadow = bytearray(REGION_BYTES)

    def scenario():
        for offset, data, flush_now in writes:
            yield engine.process(cpu.wc_store(region, offset, data))
            shadow[offset:offset + len(data)] = data
            if flush_now:
                yield engine.process(cpu.wc_flush(region))
        yield engine.process(cpu.wc_flush(region))
        yield engine.process(cpu.write_verify_read())

    engine.run_process(scenario())
    assert region.snapshot() == bytes(shadow)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(WRITES, st.integers(2, 12))
def test_device_memory_never_invents_bytes(writes, wc_lines):
    """Invariant 2: at every point, each device byte is either still zero
    or equals the latest store covering it (evictions may lag, never lie)."""
    engine, link, cpu, region = make_host(wc_lines=wc_lines)
    shadow = bytearray(REGION_BYTES)
    stored = bytearray(REGION_BYTES)  # 1 where any store ever covered

    def scenario():
        for offset, data, _flush in writes:
            yield engine.process(cpu.wc_store(region, offset, data))
            shadow[offset:offset + len(data)] = data
            stored[offset:offset + len(data)] = b"\x01" * len(data)
            yield engine.process(cpu.write_verify_read())
            snapshot = region.snapshot()
            for index in range(REGION_BYTES):
                if not stored[index]:
                    assert snapshot[index] == 0, f"byte {index} invented"
        yield engine.process(cpu.wc_flush(region))
        yield engine.process(cpu.write_verify_read())

    engine.run_process(scenario())
    assert region.snapshot() == bytes(shadow)


def test_eviction_order_is_fifo():
    """Invariant 3: overflowing the WC buffer lands the oldest line first."""
    engine, link, cpu, region = make_host(wc_lines=2)
    landings = []
    original_write = region.write

    def tracking_write(offset, data):
        landings.append(offset // 64)
        original_write(offset, data)

    region.write = tracking_write

    def scenario():
        for line in range(4):  # lines 0..3; capacity 2 forces 2 evictions
            yield engine.process(cpu.wc_store(region, line * 64, bytes([line + 1]) * 8))
        yield engine.process(cpu.write_verify_read())

    engine.run_process(scenario())
    assert landings == [0, 1]  # oldest lines evicted, in order


def test_posted_writes_do_not_block_the_issuer():
    engine, link, cpu, region = make_host()

    def scenario():
        start = engine.now
        yield engine.process(cpu.wc_store(region, 0, b"x" * 8))
        yield engine.process(cpu.wc_flush(region))
        return engine.now - start

    elapsed = engine.run_process(scenario())
    # Store+flush cost only; the landing happens asynchronously.
    assert elapsed == pytest.approx(630e-9, rel=0.05)


def test_power_loss_respects_wvr_boundary():
    """Bytes covered by a completed WVR survive; later un-flushed bytes
    may not — the exact boundary the BA commit protocol relies on."""
    engine, link, cpu, region = make_host()

    def scenario():
        yield engine.process(cpu.wc_store(region, 0, b"durable!"))
        yield engine.process(cpu.wc_flush(region))
        yield engine.process(cpu.write_verify_read())
        yield engine.process(cpu.wc_store(region, 64, b"maybe"))
        # crash before flushing line 1

    engine.run_process(scenario())
    cpu.power_loss()
    link.power_loss()
    assert region.read(0, 8) == b"durable!"
    assert region.read(64, 5) == bytes(5)
