"""Unit tests for the PCIe link model and BAR windows."""

import pytest

from repro.host.memory import ByteRegion
from repro.pcie import BarWindow, PcieLink, PcieParams
from repro.pcie.bar import BarAccessError
from repro.sim import Engine
from repro.sim.units import NSEC, USEC


class TestPcieLink:
    def test_posted_write_returns_immediately_and_lands_later(self):
        engine = Engine()
        link = PcieLink(engine)
        region = ByteRegion("dev", 1024)
        landing = link.posted_write(64, deposit=lambda: region.write(0, b"x" * 64))
        assert landing > engine.now
        assert region.read(0, 1) == b"\x00"  # not yet landed
        engine.run()
        assert region.read(0, 64) == b"x" * 64

    def test_non_posted_read_waits_for_prior_posted_writes(self):
        engine = Engine()
        link = PcieLink(engine)
        deposited = []
        link.posted_write(64, deposit=lambda: deposited.append(engine.now))

        def reader():
            yield engine.process(link.non_posted_read(0))
            return engine.now

        finished = engine.run_process(reader())
        assert deposited, "posted write must have landed before the read completed"
        assert finished >= deposited[0]

    def test_mmio_read_latency_calibration(self):
        link = PcieLink(Engine())
        # 4 KiB split into 512 8-byte TLPs at 293 ns each: ~150 us (Fig. 7a).
        assert link.mmio_read_latency(4096) == pytest.approx(150 * USEC, rel=0.01)
        assert link.mmio_read_latency(8) == pytest.approx(293 * NSEC)
        assert link.mmio_read_latency(0) == 0.0

    def test_read_tlp_size_limit(self):
        engine = Engine()
        link = PcieLink(engine)
        with pytest.raises(ValueError):
            engine.run_process(link.non_posted_read(16))

    def test_posted_writes_serialize_on_the_wire(self):
        engine = Engine()
        link = PcieLink(engine)
        first = link.posted_write(4096)
        second = link.posted_write(4096)
        assert second > first

    def test_zero_byte_read_costs_no_tlp(self):
        engine = Engine()
        link = PcieLink(engine)
        engine.run_process(link.non_posted_read(0))
        assert link.read_tlps_issued == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PcieParams(bandwidth_bytes_per_sec=0)


class TestBarWindow:
    def test_translate_within_window(self):
        bar = BarWindow(index=1, host_base=0x1000, size=0x100, device_base=0x40)
        assert bar.translate(0x1000) == 0x40
        assert bar.translate(0x10FF) == 0x13F

    def test_translate_out_of_window_rejected(self):
        bar = BarWindow(index=1, host_base=0x1000, size=0x100)
        with pytest.raises(BarAccessError):
            bar.translate(0x0FFF)
        with pytest.raises(BarAccessError):
            bar.translate(0x10F0, nbytes=0x20)

    def test_contains(self):
        bar = BarWindow(index=0, host_base=100, size=10)
        assert bar.contains(100)
        assert bar.contains(109)
        assert not bar.contains(110)

    def test_invalid_bar_index(self):
        with pytest.raises(ValueError):
            BarWindow(index=6, host_base=0, size=1)
