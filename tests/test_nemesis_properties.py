"""Property: *any* scheduled fault interleaving preserves durability.

The registered matrix pins notable scenarios; Hypothesis explores the
space between them — arbitrary compositions of catalog faults at
arbitrary times against arbitrary victims.  The invariant under test is
the pool-level BA_SYNC promise: whatever the adversary does (within a
crash budget that leaves at least one leg of every stream standing),
every quorum-acked append is readable after recovery, untorn, with
gapless per-client ack prefixes.  When it fails, shrinking hands back
the minimal failing fault sequence — the bug report writes itself.

``derandomize=True`` keeps the explored examples byte-identical across
runs: this is a determinism-gated repo, and a flaky property test would
be worse than none.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nemesis import CampaignSpec, fault, run_campaign

#: Streams wal0/wal1 exist in the default 2-stream campaign; "other:" is
#: only meaningful mid-promotion, so it appears via failover_crash only.
ROLES = ("primary:wal0", "replica:wal0", "primary:wal1", "replica:wal1")

#: Crashes a fault costs against the budget.  The default pool has 4
#: nodes and 2-leg streams: after two crashes a spare may be gone
#: (availability can die) but one leg of every stream survives, so the
#: durability contract must still hold unconditionally.
CRASH_WEIGHT = {"power_loss": 1, "failover_crash": 2}

_times = st.integers(100, 1200).map(float)
_durations = st.integers(100, 500).map(float)
_victims = st.sampled_from(ROLES)


@st.composite
def _fault_spec(draw):
    kind = draw(st.sampled_from((
        "power_loss", "failover_crash", "partition",
        "degrade", "slow_die", "gc_storm",
    )))
    at_us = draw(_times)
    if kind == "power_loss":
        return fault(kind, at_us, victim=draw(_victims))
    if kind == "failover_crash":
        victim = draw(_victims)
        stream = victim.split(":", 1)[1]
        return fault(kind, at_us, victim=victim,
                     second_victim=f"other:{stream}",
                     delay_us=float(draw(st.integers(20, 80))))
    if kind == "partition":
        return fault(kind, at_us, victim=draw(_victims),
                     duration_us=draw(_durations))
    if kind == "degrade":
        return fault(kind, at_us,
                     factor=float(draw(st.integers(2, 10))),
                     duration_us=draw(_durations))
    if kind == "slow_die":
        return fault(kind, at_us, victim=draw(_victims),
                     die_index=draw(st.integers(0, 1)),
                     factor=float(draw(st.integers(2, 8))),
                     duration_us=draw(_durations))
    return fault(kind, at_us, victim=draw(_victims),
                 band_pages=64, rewrites=draw(st.integers(2, 6)))


_schedules = st.lists(_fault_spec(), min_size=1, max_size=3).filter(
    lambda faults: sum(CRASH_WEIGHT.get(spec.kind, 0)
                       for spec in faults) <= 2)


@given(faults=_schedules)
@settings(max_examples=15, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
def test_any_fault_interleaving_preserves_acked_durability(faults):
    spec = CampaignSpec(
        name="property-interleaving",
        seed=4321,
        duration_us=1500.0,
        drain_us=600.0,
        faults=tuple(faults),
    )
    result = run_campaign(spec)
    assert result["ok"], (
        [v["invariant"] for v in result["analysis"]["violations"]],
        [spec.to_dict() for spec in faults],
    )
    for name, info in result["recovery"].items():
        if info["checked"]:
            assert info["missing"] == 0, (name, faults)
            assert info["torn"] == 0, (name, faults)
    assert result["sanitizer"]["violations"] == 0
