"""Gateway serving tests: correctness, pipelining, backpressure bounds,
degradation under byte-path pressure, and crash durability."""

import pytest

from repro.cluster import ClusterCrashHarness, DevicePool, FailoverManager
from repro.core import MappingTableFullError
from repro.db.memkv.commands import Command, Reply, decode_value
from repro.gateway import (
    BoundedQueue,
    GatewayConfig,
    GatewayError,
    GatewayLoad,
    GatewayServer,
    SimPipe,
    decode_gateway_record,
    decode_reply_frame,
    encode_request,
    run_serving,
)
from repro.gateway.protocol import FrameDecoder
from repro.nemesis.analyzer import StreamingAnalyzer
from repro.sim import Engine


# -- flow-control primitives --------------------------------------------------


def test_simpipe_blocks_writer_at_capacity():
    engine = Engine()
    pipe = SimPipe(engine, capacity=4)
    first = pipe.send(b"abcd")
    assert first._processed  # fits exactly
    second = pipe.send(b"ef")
    assert not second._processed  # buffer full: writer parks
    assert pipe.stalls == 1
    got = pipe.recv(3)
    assert got._processed and got._value == b"abc"
    assert second._processed  # space freed; parked sender admitted
    assert pipe.recv(16)._value == b"def"


def test_simpipe_eof_semantics():
    engine = Engine()
    pipe = SimPipe(engine, capacity=8)
    pipe.send(b"tail")
    pipe.close()
    assert pipe.recv(16)._value == b"tail"  # buffered bytes drain first
    assert pipe.recv(16)._value == b""  # then EOF
    with pytest.raises(GatewayError):
        pipe.send(b"x")


def test_bounded_queue_parks_putter_at_capacity():
    engine = Engine()
    queue = BoundedQueue(engine, capacity=2)
    assert queue.put("a")._processed
    assert queue.put("b")._processed
    third = queue.put("c")
    assert not third._processed
    assert queue.stalls == 1
    assert queue.get()._value == "a"
    assert third._processed  # freed slot admits the parked putter
    assert len(queue) == 2


# -- serving correctness ------------------------------------------------------


def _pool(devices=3, seed=777):
    return DevicePool(devices=devices, seed=seed)


def test_serving_answers_every_pipelined_command():
    result = run_serving(_pool(), clients=16, commands_per_client=8,
                         pipeline_depth=4, queue_depth=8)
    assert result.replies == result.commands == 16 * 8
    assert result.server_stats["open_conns"] == 0
    assert result.ok and result.values  # both writes and reads served
    assert result.server_stats["requests"] == result.commands
    # Every shard stream landed on byte-path legs (budget was free).
    for kinds in result.server_stats["shard_kinds"]:
        assert all(kind == "ba" for kind in kinds)


def test_serving_is_deterministic():
    first = run_serving(_pool(), clients=12, commands_per_client=6)
    second = run_serving(_pool(), clients=12, commands_per_client=6)
    assert first.to_dict() == second.to_dict()


def test_get_observes_prior_writes_in_order():
    """SET then GET on one pipelined connection returns the set value."""
    pool = _pool(devices=2)
    engine = pool.engine
    server = GatewayServer(pool, GatewayConfig(replicas=2, pipeline_depth=4))
    engine.run_process(server.start())
    replies = []

    def client():
        conn = yield engine.process(server.accept())
        conn.c2s.send(encode_request(Command.SET, "k", b"v1"))
        conn.c2s.send(encode_request(Command.GET, "k"))
        conn.c2s.send(encode_request(Command.APPEND, "k", b"+v2"))
        conn.c2s.send(encode_request(Command.GET, "k"))
        conn.c2s.send(encode_request(Command.GET, "absent"))
        decoder = FrameDecoder()
        while len(replies) < 5:
            chunk = yield conn.s2c.recv(4096)
            for body in decoder.feed(chunk):
                replies.append(decode_reply_frame(body))
        conn.close()
        return None

    engine.run(until=engine.process(client()))
    engine.run()
    assert replies[0] == (Reply.OK, b"")
    assert replies[1][0] is Reply.VALUE
    assert decode_value(replies[1][1]) == b"v1"
    assert decode_value(replies[3][1]) == b"v1+v2"
    assert decode_value(replies[4][1]) is None  # miss, not empty


def test_pipelining_overlaps_commits():
    """Depth 8 finishes the same per-client workload in less simulated
    time than depth 1 — in-flight commands overlap WAL commits."""
    deep = run_serving(_pool(seed=31), clients=4, commands_per_client=16,
                       pipeline_depth=8)
    shallow = run_serving(_pool(seed=31), clients=4, commands_per_client=16,
                          pipeline_depth=1)
    assert deep.replies == shallow.replies
    assert deep.sim_seconds < shallow.sim_seconds


def test_malformed_frame_kills_connection_after_ordered_error():
    pool = _pool(devices=2)
    engine = pool.engine
    server = GatewayServer(pool, GatewayConfig(replicas=2))
    engine.run_process(server.start())
    replies = []

    def client():
        conn = yield engine.process(server.accept())
        conn.c2s.send(encode_request(Command.SET, "k", b"v"))
        # A hostile length prefix: framing is unrecoverable.
        conn.c2s.send((1 << 31).to_bytes(4, "little") + b"junk")
        decoder = FrameDecoder()
        while True:
            chunk = yield conn.s2c.recv(4096)
            if not chunk:
                break  # server hung up
            for body in decoder.feed(chunk):
                replies.append(decode_reply_frame(body))
        return None

    engine.run(until=engine.process(client()))
    engine.run()
    assert replies[0] == (Reply.OK, b"")  # the good command still acked
    assert replies[1][0] is Reply.ERR  # then the framing error, in order
    assert server.errors == 1
    assert server.stats()["open_conns"] == 0


def test_connection_limit_refuses_with_gateway_error():
    pool = _pool(devices=2)
    engine = pool.engine
    server = GatewayServer(pool, GatewayConfig(replicas=2, max_conns=2))
    engine.run_process(server.start())
    engine.run_process(server.accept())
    engine.run_process(server.accept())
    with pytest.raises(GatewayError):
        engine.run_process(server.accept())
    assert server.refused == 1


# -- backpressure -------------------------------------------------------------


def test_slowloris_reader_is_bounded_not_buffered():
    """A slow reader engages the whole chain — full reply pipe, stalled
    writer, exhausted window, stalled shard queue — while every buffer
    stays at its configured bound."""
    pool = _pool(devices=2, seed=55)
    engine = pool.engine
    config = GatewayConfig(replicas=2, pipeline_depth=4, queue_depth=4,
                           socket_buffer_bytes=64)
    server = GatewayServer(pool, config)
    engine.run_process(server.start())
    load = GatewayLoad(server, value_bytes=48)
    sessions = [
        engine.process(load.client(client_id, 12,
                                   recv_delay=3e-4 if client_id == 0 else 0.0))
        for client_id in range(8)
    ]
    # Pause mid-run and check the bounds while backpressure is live.
    engine.run(until=engine.timeout(2e-4))
    for shard in server.shards:
        for queue in shard.queues:
            assert len(queue) <= config.queue_depth
    for conn in server._conns.values():
        assert len(conn.c2s._buffer) <= config.socket_buffer_bytes
        assert len(conn.s2c._buffer) <= config.socket_buffer_bytes
    engine.run(until=engine.all_of(sessions))
    engine.run()
    stats = server.stats()
    assert stats["queue_stalls"] > 0  # queue pushed back on readers
    assert stats["socket_stalls"] > 0  # full pipes pushed back on writers
    assert load.replies == load.commands  # and yet nothing was lost
    assert stats["open_conns"] == 0


# -- degradation under byte-path pressure -------------------------------------


def test_mapping_pressure_degrades_shard_to_block_wal():
    """Mid-run ``MappingTableFullError`` with the BA budget exhausted:
    the shard replays onto block-WAL legs and the command retries —
    slower commits, no lost data."""
    pool = _pool(devices=2, seed=91)
    engine = pool.engine
    server = GatewayServer(pool, GatewayConfig(
        shards=1, replicas=2, pipeline_depth=4))
    engine.run_process(server.start())
    shard = server.shards[0]
    assert all(leg.kind == "ba" for leg in shard.stream.legs())
    # Exhaust the remaining byte-path budget on both nodes.
    for index in range(3):
        engine.run_process(pool.open_stream(f"filler-{index}", replicas=2))
    # Inject byte-path pressure on the next append only (the group-commit
    # path routes multi-record runs through append_batch, single-record
    # runs through append — arm both).
    real_append = shard.stream.append
    real_append_batch = shard.stream.append_batch
    state = {"armed": True}

    def flaky_append(payload):
        if state["armed"]:
            state["armed"] = False
            raise MappingTableFullError("mapping table exhausted")
        return real_append(payload)

    def flaky_append_batch(payloads):
        if state["armed"]:
            state["armed"] = False
            raise MappingTableFullError("mapping table exhausted")
        return real_append_batch(payloads)

    shard.stream.append = flaky_append
    shard.stream.append_batch = flaky_append_batch
    load = GatewayLoad(server, value_bytes=32)
    sessions = [engine.process(load.client(client_id, 8))
                for client_id in range(4)]
    engine.run(until=engine.all_of(sessions))
    engine.run()
    assert server.degrades == 1
    assert load.replies == load.commands
    stats = server.stats()
    assert any(kind == "block" for kind in stats["shard_kinds"][0])
    # The replayed log still holds every acked write: recover and count.
    records = engine.run_process(server.shards[0].stream.recover())
    assert records  # the pre-degrade writes survived the replay swap


# -- crash durability ---------------------------------------------------------


def test_power_loss_mid_pipeline_loses_no_acked_command():
    """Crash a shard primary mid-pipeline, fail over, recover the server,
    reconnect the clients — then prove via the nemesis analyzer that
    every acked command is present, untorn, and gapless on the
    surviving WAL legs."""
    pool = _pool(devices=3, seed=1234)
    engine = pool.engine
    server = GatewayServer(pool, GatewayConfig(
        shards=2, replicas=2, pipeline_depth=4, queue_depth=8))
    engine.run_process(server.start())
    load = GatewayLoad(server, value_bytes=96, payload_stamps=True)
    clients, commands = 8, 12
    for client_id in range(clients):
        engine.process(load.client(client_id, commands))
    engine.run(until=engine.timeout(2e-4))  # mid-pipeline: acks in flight
    acked_before = sum(len(entries) for entries in load.acked.values())
    assert 0 < acked_before < clients * commands
    victim = server.shards[0].stream.primary.node.name
    harness = ClusterCrashHarness(pool)
    manager = FailoverManager(pool)
    harness.crash_node_now(victim)
    for shard in server.shards:
        stream = pool.streams[shard.stream_name]
        if any(not leg.node.up for leg in stream.legs()):
            engine.run_process(manager.fail_over(shard.stream_name))
    assert server.recover() == 2
    sessions = [
        engine.process(load.client(client_id, commands,
                                   start_seq=load.resume_seq(client_id)))
        for client_id in range(clients)
    ]
    engine.run(until=engine.all_of(sessions))
    engine.run()
    analyzer = StreamingAnalyzer()
    summary = analyzer.check_recovery(pool, load.acked,
                                      decode=decode_gateway_record)
    assert analyzer.ok(), [v.to_dict() for v in analyzer.violations]
    checked = [entry for entry in summary.values() if entry["checked"]]
    assert checked and all(entry["missing"] == 0 for entry in checked)
    assert sum(entry["acked"] for entry in checked) > acked_before
