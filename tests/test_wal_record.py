"""Tests for the log-record wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wal import (
    RECORD_HEADER_BYTES,
    RecordFormatError,
    decode_record,
    encode_record,
    scan_records,
)


class TestRecordCodec:
    def test_roundtrip(self):
        encoded = encode_record(100, b"payload")
        lsn, payload, next_offset = decode_record(encoded)
        assert (lsn, payload) == (100, b"payload")
        assert next_offset == RECORD_HEADER_BYTES + 7

    def test_empty_payload(self):
        encoded = encode_record(0, b"")
        lsn, payload, next_offset = decode_record(encoded)
        assert (lsn, payload) == (0, b"")
        assert next_offset == RECORD_HEADER_BYTES

    def test_corrupt_payload_detected(self):
        encoded = bytearray(encode_record(0, b"payload"))
        encoded[-1] ^= 0xFF
        with pytest.raises(RecordFormatError, match="crc"):
            decode_record(bytes(encoded))

    def test_corrupt_lsn_detected(self):
        encoded = bytearray(encode_record(7, b"payload"))
        encoded[6] ^= 0x01  # inside the LSN field
        with pytest.raises(RecordFormatError):
            decode_record(bytes(encoded))

    def test_truncated_record_detected(self):
        encoded = encode_record(0, b"payload")
        with pytest.raises(RecordFormatError, match="truncated"):
            decode_record(encoded[:-2])

    def test_bad_magic_detected(self):
        with pytest.raises(RecordFormatError, match="magic"):
            decode_record(bytes(RECORD_HEADER_BYTES))

    def test_negative_lsn_rejected(self):
        with pytest.raises(ValueError):
            encode_record(-1, b"x")

    @given(st.integers(0, 2**40), st.binary(max_size=500))
    def test_property_roundtrip(self, lsn, payload):
        decoded_lsn, decoded_payload, _ = decode_record(encode_record(lsn, payload))
        assert (decoded_lsn, decoded_payload) == (lsn, payload)


class TestScan:
    def test_scan_contiguous_stream(self):
        stream = b""
        expected = []
        lsn = 0
        for i in range(10):
            payload = bytes([i]) * (i + 1)
            record = encode_record(lsn, payload)
            stream += record
            expected.append((lsn, payload))
            lsn += len(record)
        assert scan_records(stream) == expected

    def test_scan_stops_at_torn_record(self):
        first = encode_record(0, b"good")
        second = bytearray(encode_record(len(first), b"torn"))
        second[-1] ^= 0xFF
        records = scan_records(bytes(first) + bytes(second))
        assert records == [(0, b"good")]

    def test_scan_stops_at_lsn_gap(self):
        first = encode_record(0, b"good")
        # Record claims a non-contiguous LSN: stale leftover from a
        # previous log generation.
        stale = encode_record(len(first) + 64, b"stale")
        assert scan_records(bytes(first) + stale) == [(0, b"good")]

    def test_scan_with_nonzero_start(self):
        record = encode_record(4096, b"late start")
        assert scan_records(record, start_lsn=4096) == [(4096, b"late start")]

    def test_scan_empty_buffer(self):
        assert scan_records(b"") == []
        assert scan_records(bytes(100)) == []

    @given(st.lists(st.binary(min_size=0, max_size=60), max_size=20),
           st.integers(0, 200))
    def test_property_scan_recovers_prefix_before_corruption(self, payloads, cut):
        stream = bytearray()
        boundaries = []
        lsn = 0
        for payload in payloads:
            record = encode_record(lsn, payload)
            stream += record
            lsn += len(record)
            boundaries.append(lsn)
        if not stream:
            return
        position = min(cut, len(stream) - 1)
        stream[position] ^= 0xFF
        records = scan_records(bytes(stream))
        # Every recovered record must precede the corruption point.
        recovered_end = boundaries[len(records) - 1] if records else 0
        assert recovered_end <= position or position >= recovered_end
        # And recovered payloads match the originals.
        for (got_lsn, got_payload), original in zip(records, payloads):
            assert got_payload == original
