"""Tests for the SQL front end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.relational import RelationalEngine
from repro.db.relational.sql import SqlError, SqlSession
from repro.ssd import ULL_SSD
from repro.wal import BaWAL, BlockWAL
from tests.helpers import Platform, small_ba_params


def make_session(wal_kind="block"):
    platform = Platform(ba_params=small_ba_params(64), seed=81)
    if wal_kind == "block":
        device = platform.add_block_ssd(ULL_SSD)
        wal = BlockWAL(platform.engine, device, platform.cpu, area_pages=8192)
    else:
        wal = BaWAL(platform.engine, platform.api, area_pages=8192)
        platform.engine.run_process(wal.start())
    db = RelationalEngine(platform.engine, wal)
    return platform, db, SqlSession(db)


def run(platform, session, *statements):
    engine = platform.engine

    def script():
        results = []
        for statement in statements:
            results.append((yield engine.process(session.execute(statement))))
        return results

    return engine.run_process(script())


class TestBasicStatements:
    def test_create_insert_select(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "CREATE TABLE accounts",
                      "INSERT INTO accounts (id, owner, balance) "
                      "VALUES (1, 'alice', 100)",
                      "SELECT * FROM accounts WHERE id = 1")
        assert results[2] == [{"id": 1, "owner": "alice", "balance": 100}]

    def test_select_missing_row_empty(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "CREATE TABLE t",
                      "SELECT * FROM t WHERE id = 99")
        assert results[1] == []

    def test_update(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "CREATE TABLE t",
                      "INSERT INTO t (id, v) VALUES (1, 10)",
                      "UPDATE t SET v = 20 WHERE id = 1",
                      "SELECT v FROM t WHERE id = 1",
                      "UPDATE t SET v = 5 WHERE id = 42")
        assert results[2] == 1
        assert results[3] == [{"v": 20}]
        assert results[4] == 0  # no such row

    def test_delete(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "CREATE TABLE t",
                      "INSERT INTO t (id) VALUES (1)",
                      "DELETE FROM t WHERE id = 1",
                      "SELECT * FROM t WHERE id = 1",
                      "DELETE FROM t WHERE id = 1")
        assert results[2] == 1
        assert results[3] == []
        assert results[4] == 0

    def test_range_and_limit(self):
        platform, db, session = make_session()
        statements = ["CREATE TABLE t"]
        statements += [f"INSERT INTO t (id, v) VALUES ({i}, {i * 10})"
                       for i in range(10)]
        statements += ["SELECT id FROM t WHERE id BETWEEN 3 AND 7",
                       "SELECT id FROM t WHERE id BETWEEN 0 AND 9 LIMIT 4"]
        results = run(platform, session, *statements)
        assert [r["id"] for r in results[-2]] == [3, 4, 5, 6, 7]
        assert [r["id"] for r in results[-1]] == [0, 1, 2, 3]

    def test_projection(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "CREATE TABLE t",
                      "INSERT INTO t (id, a, b) VALUES (1, 'x', 'y')",
                      "SELECT b, id FROM t WHERE id = 1")
        assert results[2] == [{"b": "y", "id": 1}]

    def test_literals(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "CREATE TABLE t",
                      "INSERT INTO t (id, s, raw, flag, nothing) "
                      "VALUES (-5, 'it''s', X'deadbeef', TRUE, NULL)",
                      "SELECT * FROM t WHERE id = -5")
        row = results[2][0]
        assert row["s"] == "it's"
        assert row["raw"] == bytes.fromhex("deadbeef")
        assert row["flag"] is True
        assert row["nothing"] is None

    def test_case_insensitive_keywords(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "create table t",
                      "insert into t (id) values (1)",
                      "select * from t where id = 1")
        assert results[2] == [{"id": 1}]


class TestTransactions:
    def test_explicit_commit(self):
        platform, db, session = make_session()
        run(platform, session,
            "CREATE TABLE t", "BEGIN",
            "INSERT INTO t (id, v) VALUES (1, 1)",
            "INSERT INTO t (id, v) VALUES (2, 2)",
            "COMMIT")
        assert db.row_count("t") == 2
        assert not session.in_transaction

    def test_rollback_discards(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "CREATE TABLE t", "BEGIN",
                      "INSERT INTO t (id) VALUES (1)",
                      "ROLLBACK",
                      "SELECT * FROM t WHERE id = 1")
        assert results[4] == []

    def test_autocommit_failure_rolls_back(self):
        platform, db, session = make_session()
        with pytest.raises(ValueError, match="no such table"):
            run(platform, session, "INSERT INTO ghost (id) VALUES (1)")

    def test_nested_begin_rejected(self):
        platform, db, session = make_session()
        with pytest.raises(SqlError, match="already in a transaction"):
            run(platform, session, "BEGIN", "BEGIN")

    def test_commit_without_begin_rejected(self):
        platform, db, session = make_session()
        with pytest.raises(SqlError, match="outside a transaction"):
            run(platform, session, "COMMIT")

    def test_committed_sql_survives_crash_on_ba_wal(self):
        platform, db, session = make_session(wal_kind="ba")
        run(platform, session,
            "CREATE TABLE t",
            "INSERT INTO t (id, v) VALUES (1, 'durable')",
            "BEGIN",
            "INSERT INTO t (id, v) VALUES (2, 'uncommitted')")
        platform.power.power_cycle()
        fresh = RelationalEngine(platform.engine, db.wal)
        fresh.create_table("t")
        platform.engine.run_process(fresh.recover())
        fresh_session = SqlSession(fresh)
        results = run(platform, fresh_session,
                      "SELECT v FROM t WHERE id = 1",
                      "SELECT * FROM t WHERE id = 2")
        assert results[0] == [{"v": "durable"}]
        assert results[1] == []


class TestParseErrors:
    CASES = [
        "DROP TABLE t",                                  # unsupported verb
        "SELECT * FROM t",                               # missing WHERE
        "SELECT * FROM t WHERE name = 'x'",              # non-pk predicate
        "INSERT INTO t (a) VALUES (1)",                  # missing pk
        "INSERT INTO t (id, a) VALUES (1)",              # arity mismatch
        "UPDATE t SET id = 2 WHERE id = 1",              # pk update
        "SELECT * FROM t WHERE id = 1 garbage",          # trailing tokens
        "INSERT INTO t (id) VALUES (@)",                 # bad token
        "SELECT",                                        # truncated
    ]

    @pytest.mark.parametrize("statement", CASES, ids=lambda s: s[:30])
    def test_rejected(self, statement):
        platform, db, session = make_session()
        run(platform, session, "CREATE TABLE t")
        with pytest.raises(SqlError):
            run(platform, session, statement)


class TestSqlProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9),
                              st.one_of(st.integers(-100, 100),
                                        st.text(alphabet="abc", max_size=5))),
                    min_size=1, max_size=25))
    def test_property_sql_matches_dict(self, writes):
        platform, db, session = make_session()
        run(platform, session, "CREATE TABLE t")
        shadow = {}
        for key, value in writes:
            if isinstance(value, str):
                literal = "'" + value.replace("'", "''") + "'"
            else:
                literal = str(value)
            if key in shadow:
                run(platform, session,
                    f"UPDATE t SET v = {literal} WHERE id = {key}")
            else:
                run(platform, session,
                    f"INSERT INTO t (id, v) VALUES ({key}, {literal})")
            shadow[key] = value
        for key, value in shadow.items():
            rows = run(platform, session,
                       f"SELECT v FROM t WHERE id = {key}")[0]
            assert rows == [{"v": value}]


class TestTransactionVisibility:
    def test_select_sees_own_uncommitted_writes(self):
        platform, db, session = make_session()
        results = run(platform, session,
                      "CREATE TABLE t",
                      "INSERT INTO t (id, v) VALUES (1, 'committed')",
                      "BEGIN",
                      "UPDATE t SET v = 'mine' WHERE id = 1",
                      "INSERT INTO t (id, v) VALUES (2, 'also mine')",
                      "SELECT v FROM t WHERE id = 1",
                      "SELECT id FROM t WHERE id BETWEEN 1 AND 5",
                      "ROLLBACK",
                      "SELECT v FROM t WHERE id = 1")
        assert results[5] == [{"v": "mine"}]
        assert [r["id"] for r in results[6]] == [1, 2]
        assert results[8] == [{"v": "committed"}]

    def test_other_sessions_do_not_see_uncommitted(self):
        platform, db, session = make_session()
        other = __import__("repro.db.relational.sql",
                           fromlist=["SqlSession"]).SqlSession(db)
        run(platform, session,
            "CREATE TABLE t",
            "INSERT INTO t (id, v) VALUES (1, 'old')",
            "BEGIN",
            "UPDATE t SET v = 'pending' WHERE id = 1")
        rows = run(platform, other, "SELECT v FROM t WHERE id = 1")[0]
        assert rows == [{"v": "old"}]
        run(platform, session, "COMMIT")
        rows = run(platform, other, "SELECT v FROM t WHERE id = 1")[0]
        assert rows == [{"v": "pending"}]
