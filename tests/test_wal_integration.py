"""Cross-layer WAL integration: shared BA-buffers and filesystem-backed logs."""

import pytest

from repro.fs import ExtentFileSystem, FileSystemError
from repro.sim.units import MiB
from repro.wal import BaWAL
from tests.helpers import Platform, small_ba_params

PAGE = 4096


class TestSharedBaBuffer:
    def test_three_logs_share_one_ba_buffer(self):
        """Three independent BA-WALs on one 2B-SSD, each with its own pair
        of mapping entries and buffer slice — exercising the 8-entry table
        the way a multi-tenant host would."""
        platform = Platform(ba_params=small_ba_params(96), seed=51)
        engine = platform.engine
        segment = 16 * 1024  # 16 KiB segments; 6 of them = 96 KiB buffer
        wals = []
        for index in range(3):
            wal = BaWAL(
                engine, platform.api,
                start_lpn=1000 + index * 4096,
                area_pages=4096,
                segment_bytes=segment,
                entry_ids=(2 * index, 2 * index + 1),
                buffer_base=index * 2 * segment,
            )
            engine.run_process(wal.start())
            wals.append(wal)

        def tenant(wal, tag):
            for i in range(60):
                payload = b"%s-%03d" % (tag, i) + b"." * 100
                yield engine.process(wal.append_and_commit(payload))

        def scenario():
            procs = [
                engine.process(tenant(wal, b"T%d" % index))
                for index, wal in enumerate(wals)
            ]
            yield engine.all_of(procs)

        engine.run_process(scenario())
        for index, wal in enumerate(wals):
            records = engine.run_process(wal.recover())
            payloads = [p for _l, p in records]
            assert len(payloads) == 60
            assert all(p.startswith(b"T%d-" % index) for p in payloads)

    def test_overlapping_buffer_slices_rejected_by_mapping_table(self):
        from repro.core import PinConflictError
        platform = Platform(ba_params=small_ba_params(64), seed=52)
        engine = platform.engine
        first = BaWAL(engine, platform.api, start_lpn=0, area_pages=1024,
                      segment_bytes=16 * 1024, entry_ids=(0, 1), buffer_base=0)
        engine.run_process(first.start())
        # Same buffer slice, different entries: the table must refuse.
        second = BaWAL(engine, platform.api, start_lpn=8192, area_pages=1024,
                       segment_bytes=16 * 1024, entry_ids=(2, 3), buffer_base=0)
        with pytest.raises(PinConflictError):
            engine.run_process(second.start())

    def test_duplicate_entry_ids_rejected(self):
        platform = Platform(ba_params=small_ba_params(64), seed=53)
        with pytest.raises(ValueError, match="distinct"):
            BaWAL(platform.engine, platform.api, entry_ids=(3, 3))


class TestFileBackedBaWal:
    def make_fs_platform(self):
        platform = Platform(seed=54)
        fs = ExtentFileSystem(platform.engine, platform.device)
        platform.engine.run_process(fs.format())
        return platform, fs

    def test_wal_over_preallocated_segment_file(self):
        platform, fs = self.make_fs_platform()
        engine = platform.engine

        def setup():
            log_file = yield engine.process(fs.create("pg_wal-000001"))
            yield engine.process(log_file.preallocate(16 * MiB))
            return log_file

        log_file = engine.run_process(setup())
        wal = BaWAL.over_file(engine, platform.api, log_file)
        engine.run_process(wal.start())

        def workload():
            for i in range(30):
                yield engine.process(wal.append_and_commit(b"xlog-%04d" % i))

        engine.run_process(workload())
        records = engine.run_process(wal.recover())
        assert [p for _l, p in records] == [b"xlog-%04d" % i for i in range(30)]
        # The log's LBAs are exactly the file's extent.
        lpn, _pages = log_file.extent_for(0)
        assert wal.start_lpn == lpn

    def test_empty_file_rejected(self):
        platform, fs = self.make_fs_platform()
        engine = platform.engine

        def setup():
            return (yield engine.process(fs.create("empty.wal")))

        log_file = engine.run_process(setup())
        with pytest.raises(FileSystemError, match="empty"):
            BaWAL.over_file(engine, platform.api, log_file)

    def test_fragmented_file_rejected(self):
        platform, fs = self.make_fs_platform()
        engine = platform.engine

        def setup():
            frag = yield engine.process(fs.create("frag.wal"))
            yield engine.process(frag.write(0, bytes(PAGE)))
            spacer = yield engine.process(fs.create("spacer"))
            yield engine.process(spacer.write(0, bytes(PAGE)))
            yield engine.process(frag.write(PAGE, bytes(PAGE)))
            return frag

        log_file = engine.run_process(setup())
        with pytest.raises(FileSystemError, match="fragmented"):
            BaWAL.over_file(engine, platform.api, log_file)


class TestLogAreaWrap:
    def test_ba_wal_area_wraps_and_recycles(self):
        """A log area smaller than the total log volume forces segment
        recycling with TRIM; recovery then returns only the most recent
        contiguous run of records."""
        platform = Platform(ba_params=small_ba_params(32), seed=55)
        engine = platform.engine
        # 16 KiB segments, area of 4 segments = 64 KiB; we log ~200 KiB.
        wal = BaWAL(engine, platform.api, start_lpn=0, area_pages=16,
                    segment_bytes=16 * 1024)
        engine.run_process(wal.start())
        count = 400

        def workload():
            for i in range(count):
                yield engine.process(
                    wal.append_and_commit(b"wrap%04d" % i + b"." * 480))

        engine.run_process(workload())
        engine.run()  # quiesce: let in-flight segment recycling finish
        records = engine.run_process(wal.recover())
        payloads = [p for _l, p in records]
        # Older generations were overwritten; the survivors are the most
        # recent contiguous run ending at the last committed record.
        assert payloads, "recovery found nothing after wrap"
        assert payloads[-1].startswith(b"wrap%04d" % (count - 1))
        indexes = [int(p[4:8]) for p in payloads]
        assert indexes == list(range(indexes[0], count))
        # The area really wrapped (several generations of recycling).
        assert wal.stats.device_writes > 4
