"""Tests for the extent filesystem and file-region pinning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import (
    ExtentFileSystem,
    FileSystemError,
    PermissionDenied,
    pin_file_region,
)
from repro.ssd import ULL_SSD
from tests.helpers import Platform

PAGE = 4096


def make_fs(platform=None):
    platform = platform or Platform(seed=31)
    device = platform.add_block_ssd(ULL_SSD, seed=32)
    fs = ExtentFileSystem(platform.engine, device)
    platform.engine.run_process(fs.format())
    return platform, device, fs


class TestNamespace:
    def test_create_open_list(self):
        platform, device, fs = make_fs()
        engine = platform.engine
        engine.run_process(fs.create("wal.log"))
        engine.run_process(fs.create("data.db"))
        assert fs.listdir() == ["data.db", "wal.log"]
        assert fs.open("wal.log").name == "wal.log"

    def test_duplicate_create_rejected(self):
        platform, device, fs = make_fs()
        platform.engine.run_process(fs.create("f"))
        with pytest.raises(FileSystemError, match="already exists"):
            platform.engine.run_process(fs.create("f"))

    def test_open_missing_rejected(self):
        platform, device, fs = make_fs()
        with pytest.raises(FileSystemError, match="no such file"):
            fs.open("ghost")

    def test_invalid_name_rejected(self):
        platform, device, fs = make_fs()
        with pytest.raises(FileSystemError, match="invalid"):
            platform.engine.run_process(fs.create("a/b"))

    def test_unlink_recycles_space(self):
        platform, device, fs = make_fs()
        engine = platform.engine

        def scenario():
            handle = yield engine.process(fs.create("big"))
            yield engine.process(handle.write(0, bytes(8 * PAGE)))
            before = fs._next_lpn
            yield engine.process(fs.unlink("big"))
            handle2 = yield engine.process(fs.create("reuse"))
            yield engine.process(handle2.write(0, bytes(8 * PAGE)))
            return before, fs._next_lpn

        before, after = engine.run_process(scenario())
        assert after == before  # extents were recycled, not grown

    def test_unmounted_use_rejected(self):
        platform = Platform(seed=31)
        device = platform.add_block_ssd(ULL_SSD, seed=32)
        fs = ExtentFileSystem(platform.engine, device)
        with pytest.raises(FileSystemError, match="not mounted"):
            fs.listdir()


class TestFileIO:
    def test_write_read_roundtrip(self):
        platform, device, fs = make_fs()
        engine = platform.engine

        def scenario():
            handle = yield engine.process(fs.create("f"))
            yield engine.process(handle.write(0, b"file contents"))
            return (yield engine.process(handle.read(0, 13)))

        assert engine.run_process(scenario()) == b"file contents"

    def test_unaligned_write_read(self):
        platform, device, fs = make_fs()
        engine = platform.engine

        def scenario():
            handle = yield engine.process(fs.create("f"))
            yield engine.process(handle.write(0, b"A" * 6000))
            yield engine.process(handle.write(100, b"patch"))
            head = yield engine.process(handle.read(98, 9))
            tail = yield engine.process(handle.read(5990, 100))
            return head, tail, handle.size

        head, tail, size = engine.run_process(scenario())
        assert head == b"AApatchAA"
        assert tail == b"A" * 10  # short read at EOF
        assert size == 6000

    def test_write_spanning_extents(self):
        platform, device, fs = make_fs()
        engine = platform.engine

        def scenario():
            handle = yield engine.process(fs.create("f"))
            # Force two separate extents by interleaving another file.
            yield engine.process(handle.write(0, bytes(PAGE)))
            other = yield engine.process(fs.create("other"))
            yield engine.process(other.write(0, bytes(PAGE)))
            yield engine.process(handle.write(PAGE, b"B" * PAGE))
            data = yield engine.process(handle.read(PAGE - 2, 6))
            return [tuple(e) for e in fs.stat("f")["extents"]], data

        extents, data = engine.run_process(scenario())
        assert len(extents) == 2
        assert data == b"\x00\x00BBBB"

    def test_read_past_eof_empty(self):
        platform, device, fs = make_fs()
        engine = platform.engine

        def scenario():
            handle = yield engine.process(fs.create("f"))
            yield engine.process(handle.write(0, b"xy"))
            return (yield engine.process(handle.read(100, 10)))

        assert engine.run_process(scenario()) == b""

    def test_truncate(self):
        platform, device, fs = make_fs()
        engine = platform.engine

        def scenario():
            handle = yield engine.process(fs.create("f"))
            yield engine.process(handle.write(0, bytes(3 * PAGE)))
            yield engine.process(handle.truncate(PAGE + 10))
            return handle.size, fs.stat("f")["allocated_bytes"]

        size, allocated = engine.run_process(scenario())
        assert size == PAGE + 10
        assert allocated == 2 * PAGE

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 10000),
                              st.binary(min_size=1, max_size=600)),
                    min_size=1, max_size=15))
    def test_property_matches_shadow_buffer(self, writes):
        platform, device, fs = make_fs()
        engine = platform.engine
        shadow = bytearray()

        def scenario():
            handle = yield engine.process(fs.create("f"))
            for offset, data in writes:
                yield engine.process(handle.write(offset, data))
                if offset + len(data) > len(shadow):
                    shadow.extend(bytes(offset + len(data) - len(shadow)))
                shadow[offset:offset + len(data)] = data
            content = yield engine.process(handle.read(0, len(shadow)))
            return content

        assert engine.run_process(scenario()) == bytes(shadow)


class TestMountRecovery:
    def test_remount_after_power_cycle(self):
        platform, device, fs = make_fs()
        engine = platform.engine

        def scenario():
            handle = yield engine.process(fs.create("persistent"))
            yield engine.process(handle.write(0, b"survives"))
            yield engine.process(handle.fsync())

        engine.run_process(scenario())
        platform.power.power_cycle()
        fresh = ExtentFileSystem(engine, device)

        def remount():
            yield engine.process(fresh.mount())
            handle = fresh.open("persistent")
            return (yield engine.process(handle.read(0, 8)))

        assert engine.run_process(remount()) == b"survives"

    def test_mount_unformatted_rejected(self):
        platform = Platform(seed=33)
        device = platform.add_block_ssd(ULL_SSD, seed=34)
        fs = ExtentFileSystem(platform.engine, device)
        with pytest.raises(FileSystemError, match="not formatted"):
            platform.engine.run_process(fs.mount())


class TestPinFileRegion:
    def test_pin_file_and_mmio_roundtrip(self):
        platform = Platform(seed=35)
        fs = ExtentFileSystem(platform.engine, platform.device)
        engine = platform.engine
        engine.run_process(fs.format())

        def scenario():
            handle = yield engine.process(fs.create("segment.wal"))
            yield engine.process(handle.preallocate(4 * PAGE))
            yield engine.process(handle.write(0, b"log header"))
            yield engine.process(handle.fsync())
            entry = yield engine.process(pin_file_region(
                platform.api, handle, 0, 0, 0, 4 * PAGE))
            data = yield engine.process(platform.api.mmio_read(entry, 0, 10))
            yield engine.process(platform.api.mmio_write(entry, 10, b" + record"))
            yield engine.process(platform.api.ba_sync(0))
            yield engine.process(platform.api.ba_flush(0))
            return data, (yield engine.process(handle.read(0, 19)))

        via_mmio, via_file = engine.run_process(scenario())
        assert via_mmio == b"log header"
        assert via_file == b"log header + record"

    def test_pin_requires_permission(self):
        platform = Platform(seed=36)
        fs = ExtentFileSystem(platform.engine, platform.device)
        engine = platform.engine
        engine.run_process(fs.format())

        def scenario():
            handle = yield engine.process(fs.create("private", owner="alice"))
            yield engine.process(handle.preallocate(PAGE))
            yield engine.process(pin_file_region(
                platform.api, handle, 0, 0, 0, PAGE, as_user="mallory"))

        with pytest.raises(PermissionDenied):
            engine.run_process(scenario())

    def test_pin_rejects_extent_crossing(self):
        platform = Platform(seed=37)
        fs = ExtentFileSystem(platform.engine, platform.device)
        engine = platform.engine
        engine.run_process(fs.format())

        def scenario():
            handle = yield engine.process(fs.create("fragmented"))
            yield engine.process(handle.write(0, bytes(PAGE)))
            other = yield engine.process(fs.create("spacer"))
            yield engine.process(other.write(0, bytes(PAGE)))
            yield engine.process(handle.write(PAGE, bytes(PAGE)))
            yield engine.process(pin_file_region(
                platform.api, handle, 0, 0, 0, 2 * PAGE))

        with pytest.raises(FileSystemError, match="extent boundary"):
            engine.run_process(scenario())

    def test_pin_rejects_unaligned_offset(self):
        platform = Platform(seed=38)
        fs = ExtentFileSystem(platform.engine, platform.device)
        engine = platform.engine
        engine.run_process(fs.format())

        def scenario():
            handle = yield engine.process(fs.create("f"))
            yield engine.process(handle.preallocate(2 * PAGE))
            yield engine.process(pin_file_region(
                platform.api, handle, 0, 0, 100, PAGE))

        with pytest.raises(FileSystemError, match="aligned"):
            engine.run_process(scenario())

    def test_block_write_to_pinned_file_gated(self):
        from repro.core import GatedLbaError
        platform = Platform(seed=39)
        fs = ExtentFileSystem(platform.engine, platform.device)
        engine = platform.engine
        engine.run_process(fs.format())

        def scenario():
            handle = yield engine.process(fs.create("f"))
            yield engine.process(handle.preallocate(PAGE))
            yield engine.process(pin_file_region(platform.api, handle, 0, 0, 0, PAGE))
            # Writing the same file region through the filesystem now races
            # the byte path: the LBA checker gates it.
            yield engine.process(handle.write(0, b"racing write"))

        with pytest.raises(GatedLbaError):
            engine.run_process(scenario())


class TestMetadataCrashConsistency:
    def test_crash_between_table_and_superblock_keeps_old_namespace(self):
        """Ping-pong metadata: corrupting the *inactive* table slot (as a
        torn mid-update crash would) must not affect remounting."""
        platform, device, fs = make_fs()
        engine = platform.engine

        def setup():
            handle = yield engine.process(fs.create("stable"))
            yield engine.process(handle.write(0, b"ok"))
            yield engine.process(handle.fsync())

        engine.run_process(setup())
        # Simulate a torn table write into the slot the NEXT update would
        # use: garbage lands there, but the superblock still points at the
        # valid slot.
        inactive = 1 - fs._active_slot
        engine.run_process(device.write(
            1 + inactive * fs.INODE_TABLE_PAGES, b"\xff" * 4096))
        platform.power.power_cycle()
        fresh = ExtentFileSystem(engine, device)
        engine.run_process(fresh.mount())
        assert fresh.listdir() == ["stable"]

    def test_corrupt_active_table_detected(self):
        platform, device, fs = make_fs()
        engine = platform.engine
        engine.run_process(fs.create("f"))
        engine.run_process(device.write(
            1 + fs._active_slot * fs.INODE_TABLE_PAGES, b"\x00" * 4096))
        fresh = ExtentFileSystem(engine, device)
        with pytest.raises(FileSystemError, match="CRC"):
            engine.run_process(fresh.mount())

    def test_namespace_updates_alternate_slots(self):
        platform, device, fs = make_fs()
        engine = platform.engine
        first = fs._active_slot
        engine.run_process(fs.create("a"))
        second = fs._active_slot
        engine.run_process(fs.create("b"))
        third = fs._active_slot
        assert first != second and second != third
