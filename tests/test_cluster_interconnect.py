"""Interconnect timing and consistent-hash placement.

The interconnect is the pool's analogue of ``pcie.link`` one layer up:
per-node serialized egress plus a propagation delay, all on simulated
time.  Placement must be stable (SHA-256, not salted ``hash()``) and
minimally disruptive when membership changes.
"""

import pytest

from repro.cluster import Interconnect, NetParams, Placement
from repro.cluster.errors import PlacementError
from repro.sim import Engine


def one_way(params: NetParams, nbytes: int) -> float:
    return (params.message_overhead
            + nbytes / params.bandwidth_bytes_per_sec
            + params.propagation)


class TestInterconnect:
    def test_single_transfer_latency(self):
        engine = Engine()
        net = Interconnect(engine)
        engine.run(until=engine.process(net.transfer("a", "b", 4096)))
        assert engine.now == pytest.approx(one_way(net.params, 4096))
        assert net.stats.messages == 1
        assert net.stats.bytes_sent == 4096

    def test_concurrent_sends_serialize_on_egress(self):
        engine = Engine()
        net = Interconnect(engine)
        done = [engine.process(net.transfer("a", dst, 4096))
                for dst in ("b", "c")]
        engine.run(until=engine.all_of(done))
        params = net.params
        occupancy = params.message_overhead + 4096 / params.bandwidth_bytes_per_sec
        # The second message waits for the first to clear the egress wire,
        # then pays its own occupancy plus propagation.
        assert engine.now == pytest.approx(2 * occupancy + params.propagation)

    def test_distinct_sources_do_not_contend(self):
        engine = Engine()
        net = Interconnect(engine)
        done = [engine.process(net.transfer(src, "x", 4096))
                for src in ("a", "b")]
        engine.run(until=engine.all_of(done))
        assert engine.now == pytest.approx(one_way(net.params, 4096))

    def test_control_message_is_fixed_size(self):
        engine = Engine()
        net = Interconnect(engine)
        engine.run(until=engine.process(net.send_control("a", "b")))
        assert net.stats.control_messages == 1
        assert net.stats.bytes_sent == net.params.control_bytes
        assert engine.now == pytest.approx(
            one_way(net.params, net.params.control_bytes))

    def test_rejects_self_transfer_and_negative_size(self):
        net = Interconnect(Engine())
        with pytest.raises(ValueError):
            next(net.transfer("a", "a", 64))
        with pytest.raises(ValueError):
            next(net.transfer("a", "b", -1))

    def test_params_validated(self):
        with pytest.raises(ValueError):
            NetParams(bandwidth_bytes_per_sec=0)
        with pytest.raises(ValueError):
            NetParams(propagation=-1.0)

    def test_stats_dict_round_trips(self):
        engine = Engine()
        net = Interconnect(engine)
        engine.run(until=engine.process(net.transfer("a", "b", 100)))
        assert net.stats_dict() == {
            "messages": 1, "bytes_sent": 100, "control_messages": 0,
        }


class TestPlacement:
    def test_primary_is_stable_across_instances(self):
        names = ["node0", "node1", "node2", "node3"]
        first = Placement(names)
        second = Placement(names)
        for key in ("wal0", "wal1", "stream-x"):
            assert first.primary(key) == second.primary(key)

    def test_nodes_for_returns_distinct_nodes(self):
        placement = Placement(["node0", "node1", "node2"])
        chosen = placement.nodes_for("wal7", 3)
        assert sorted(chosen) == ["node0", "node1", "node2"]

    def test_remove_node_moves_only_its_keys(self):
        placement = Placement(["node0", "node1", "node2", "node3"])
        keys = [f"wal{i}" for i in range(64)]
        before = {key: placement.primary(key) for key in keys}
        placement.remove_node("node2")
        for key in keys:
            if before[key] != "node2":
                assert placement.primary(key) == before[key]
            else:
                assert placement.primary(key) != "node2"

    def test_keys_spread_over_the_ring(self):
        placement = Placement(["node0", "node1", "node2", "node3"])
        primaries = {placement.primary(f"wal{i}") for i in range(32)}
        assert len(primaries) == 4

    def test_replica_count_bounded_by_membership(self):
        placement = Placement(["node0", "node1"])
        with pytest.raises(PlacementError):
            placement.nodes_for("wal0", 3)
        with pytest.raises(PlacementError):
            placement.nodes_for("wal0", 0)

    def test_membership_errors(self):
        placement = Placement(["node0"])
        with pytest.raises(PlacementError):
            placement.add_node("node0")
        with pytest.raises(PlacementError):
            placement.remove_node("ghost")
