"""Unit and property tests for the mapping table and page-map FTL."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ftl import FtlStats, MappingTable, PageMapFTL
from repro.nand import FlashArray, NandGeometry, NandTiming
from repro.sim import Engine, RngStreams
from repro.sim.units import USEC

FAST_NAND = NandTiming("fast", 1 * USEC, 2 * USEC, 10 * USEC,
                       jitter_fraction=0.0, endurance_cycles=10**9)


def make_ftl(channels=2, blocks_per_die=8, pages_per_block=8, page_size=64,
             overprovision=0.25):
    engine = Engine()
    geometry = NandGeometry(
        channels=channels, dies_per_channel=1, blocks_per_die=blocks_per_die,
        pages_per_block=pages_per_block, page_size=page_size,
    )
    flash = FlashArray(engine, geometry, FAST_NAND, RngStreams(3))
    return engine, PageMapFTL(engine, flash, overprovision=overprovision)


class TestMappingTable:
    def test_bind_and_lookup(self):
        table = MappingTable()
        assert table.bind(5, 100) is None
        assert table.lookup(5) == 100
        assert table.reverse_lookup(100) == 5

    def test_rebind_returns_stale_ppn(self):
        table = MappingTable()
        table.bind(5, 100)
        assert table.bind(5, 200) == 100
        assert table.lookup(5) == 200
        assert not table.is_live(100)

    def test_bind_to_live_page_rejected(self):
        table = MappingTable()
        table.bind(1, 100)
        with pytest.raises(ValueError, match="still live"):
            table.bind(2, 100)

    def test_unbind(self):
        table = MappingTable()
        table.bind(1, 100)
        assert table.unbind(1) == 100
        assert table.lookup(1) is None
        assert table.unbind(1) is None

    @given(st.lists(st.tuples(st.integers(0, 20), st.booleans()), max_size=80))
    def test_inverse_invariant_under_random_ops(self, ops):
        table = MappingTable()
        next_ppn = 0
        for lpn, do_unbind in ops:
            if do_unbind:
                table.unbind(lpn)
            else:
                table.bind(lpn, next_ppn)
                next_ppn += 1
            table.check_consistency()


class TestPageMapFTL:
    def test_write_then_read_roundtrip(self):
        engine, ftl = make_ftl()

        def scenario():
            yield engine.process(ftl.write(3, b"hello"))
            return (yield engine.process(ftl.read(3)))

        data = engine.run_process(scenario())
        assert data[:5] == b"hello"

    def test_unwritten_reads_zero(self):
        engine, ftl = make_ftl()
        assert engine.run_process(ftl.read(0)) == bytes(64)

    def test_overwrite_returns_latest(self):
        engine, ftl = make_ftl()

        def scenario():
            for i in range(5):
                yield engine.process(ftl.write(7, bytes([i]) * 8))
            return (yield engine.process(ftl.read(7)))

        data = engine.run_process(scenario())
        assert data[:8] == bytes([4]) * 8

    def test_trim_unmaps(self):
        engine, ftl = make_ftl()

        def scenario():
            yield engine.process(ftl.write(2, b"live"))
            ftl.trim(2)
            return (yield engine.process(ftl.read(2)))

        assert engine.run_process(scenario()) == bytes(64)

    def test_out_of_range_lpn_rejected(self):
        engine, ftl = make_ftl()
        with pytest.raises(ValueError, match="out of range"):
            engine.run_process(ftl.write(ftl.logical_pages, b"x"))

    def test_gc_reclaims_space_under_overwrite_churn(self):
        engine, ftl = make_ftl(channels=1, blocks_per_die=8, pages_per_block=4)
        # 32 physical pages, 24 logical. Overwrite a small working set far
        # beyond physical capacity: GC must reclaim stale pages.
        def scenario():
            for i in range(200):
                lpn = i % 4
                yield engine.process(ftl.write(lpn, bytes([i % 251]) * 8))
            values = []
            for lpn in range(4):
                values.append((yield engine.process(ftl.read(lpn))))
            return values

        values = engine.run_process(scenario())
        for lpn, data in enumerate(values):
            expected = (196 + lpn) % 251
            assert data[:8] == bytes([expected]) * 8
        assert ftl.stats.blocks_erased > 0
        ftl.check_consistency()

    def test_waf_is_at_least_one(self):
        engine, ftl = make_ftl()

        def scenario():
            for i in range(20):
                yield engine.process(ftl.write(i % 3, b"data"))

        engine.run_process(scenario())
        assert ftl.stats.waf >= 1.0

    def test_gc_increases_waf(self):
        engine, ftl = make_ftl(channels=1, blocks_per_die=8, pages_per_block=4)

        def scenario():
            # Long-lived cold data interleaved with hot churn: victim blocks
            # then hold a mix of live and stale pages, forcing relocations.
            for lpn in range(16):
                yield engine.process(ftl.write(lpn, bytes([lpn]) * 4))
            for i in range(200):
                yield engine.process(ftl.write(16 + (i % 2), b"hot"))

        engine.run_process(scenario())
        assert ftl.stats.gc_pages_written > 0
        assert ftl.stats.waf > 1.0
        # Cold data must survive relocation.
        for lpn in range(16):
            assert ftl.peek(lpn)[:4] == bytes([lpn]) * 4

    def test_sequential_fill_has_unit_waf(self):
        engine, ftl = make_ftl(channels=2, blocks_per_die=8, pages_per_block=8)

        def scenario():
            for lpn in range(ftl.logical_pages // 2):
                yield engine.process(ftl.write(lpn, b"seq"))

        engine.run_process(scenario())
        assert ftl.stats.waf == pytest.approx(1.0)

    def test_concurrent_writers_distinct_lpns(self):
        engine, ftl = make_ftl()

        def writer(lpn):
            yield engine.process(ftl.write(lpn, bytes([lpn]) * 4))

        def scenario():
            procs = [engine.process(writer(lpn)) for lpn in range(10)]
            yield engine.all_of(procs)
            out = []
            for lpn in range(10):
                out.append((yield engine.process(ftl.read(lpn))))
            return out

        values = engine.run_process(scenario())
        for lpn, data in enumerate(values):
            assert data[:4] == bytes([lpn]) * 4
        ftl.check_consistency()

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(0, 11), st.binary(min_size=1, max_size=16)),
                    min_size=1, max_size=120))
    def test_property_read_after_write(self, writes):
        """The FTL behaves like a dict of pages, under arbitrary churn."""
        engine, ftl = make_ftl(channels=2, blocks_per_die=6, pages_per_block=4)
        shadow = {}

        def scenario():
            for lpn, payload in writes:
                yield engine.process(ftl.write(lpn, payload))
                shadow[lpn] = payload + bytes(64 - len(payload))
            for lpn, expected in shadow.items():
                data = yield engine.process(ftl.read(lpn))
                assert data == expected

        engine.run_process(scenario())
        ftl.check_consistency()
        assert ftl.stats.waf >= 1.0


class TestFtlStats:
    def test_waf_without_writes(self):
        assert FtlStats().waf == 1.0


class TestWear:
    def test_wear_summary_reports_distribution(self):
        engine, ftl = make_ftl(channels=1, blocks_per_die=8, pages_per_block=4)

        def scenario():
            for i in range(400):
                yield engine.process(ftl.write(i % 4, bytes([i % 251]) * 8))

        engine.run_process(scenario())
        wear = ftl.flash.wear_summary()
        assert wear["total"] == ftl.stats.blocks_erased
        assert wear["max"] >= wear["mean"] >= wear["min"]
        assert wear["max"] > 0

    def test_wear_tiebreak_spreads_erases(self):
        # Under sustained uniform churn the wear-aware tiebreak keeps the
        # erase counts within a tight band across blocks.
        engine, ftl = make_ftl(channels=1, blocks_per_die=8, pages_per_block=4)

        def scenario():
            for i in range(800):
                yield engine.process(ftl.write(i % 6, bytes([i % 251]) * 8))

        engine.run_process(scenario())
        wear = ftl.flash.wear_summary()
        assert wear["max"] - wear["min"] <= max(4, 0.4 * wear["mean"])


class TestBackgroundGc:
    def test_background_gc_keeps_pool_high(self):
        engine, ftl = make_ftl(channels=1, blocks_per_die=16, pages_per_block=4)

        def scenario():
            for i in range(300):
                yield engine.process(ftl.write(i % 6, bytes([i % 251]) * 8))

        engine.run_process(scenario())
        engine.run()  # idle time: background GC finishes its sweep
        assert ftl.stats.background_gc_runs > 0
        assert ftl.total_free_blocks >= ftl._gc_high_watermark
        ftl.check_consistency()

    def test_background_gc_prevents_most_foreground_stalls(self):
        engine, ftl = make_ftl(channels=1, blocks_per_die=16, pages_per_block=4)

        def scenario():
            for i in range(400):
                yield engine.process(ftl.write(i % 6, bytes([i % 251]) * 8))
                # A little think time between writes lets background GC run.
                yield engine.timeout(50e-6)

        engine.run_process(scenario())
        assert ftl.stats.background_gc_runs > 0
        assert ftl.stats.foreground_gc_stalls == 0

    def test_data_intact_under_background_gc(self):
        engine, ftl = make_ftl(channels=1, blocks_per_die=16, pages_per_block=4)

        def scenario():
            for lpn in range(10):
                yield engine.process(ftl.write(lpn, bytes([lpn]) * 8))
            for i in range(300):
                yield engine.process(ftl.write(10 + i % 4, b"churn"))
                yield engine.timeout(20e-6)

        engine.run_process(scenario())
        engine.run()
        for lpn in range(10):
            assert ftl.peek(lpn)[:8] == bytes([lpn]) * 8
        ftl.check_consistency()


class TestTrimProperty:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("write"), st.integers(0, 9),
                      st.binary(min_size=1, max_size=16)),
            st.tuples(st.just("trim"), st.integers(0, 9), st.just(b"")),
        ),
        min_size=1, max_size=100,
    ))
    def test_property_trim_interleaved_with_writes(self, ops):
        """TRIM behaves like dict deletion under arbitrary interleavings,
        and never breaks the mapping invariants."""
        engine, ftl = make_ftl(channels=2, blocks_per_die=6, pages_per_block=4)
        shadow = {}

        def scenario():
            for op, lpn, payload in ops:
                if op == "write":
                    yield engine.process(ftl.write(lpn, payload))
                    shadow[lpn] = payload + bytes(64 - len(payload))
                else:
                    ftl.trim(lpn)
                    shadow.pop(lpn, None)
            for lpn in range(10):
                data = yield engine.process(ftl.read(lpn))
                assert data == shadow.get(lpn, bytes(64))

        engine.run_process(scenario())
        engine.run()  # background GC settles
        ftl.check_consistency()


class TestScrubber:
    def make_worn_ftl(self):
        from repro.nand.ecc import EccConfig
        engine = Engine()
        geometry = NandGeometry(channels=1, dies_per_channel=1,
                                blocks_per_die=8, pages_per_block=4,
                                page_size=64)
        timing = NandTiming("wearable", 1 * USEC, 2 * USEC, 10 * USEC,
                            jitter_fraction=0.0, endurance_cycles=24)
        ecc = EccConfig(correctable_bits=40, wear_slope=60.0,
                        max_read_retries=3, retry_gain_bits=12)
        flash = FlashArray(engine, geometry, timing, RngStreams(5), ecc=ecc)
        return engine, PageMapFTL(engine, flash, overprovision=0.25)

    def test_scrub_on_fresh_media_is_a_noop(self):
        engine, ftl = self.make_worn_ftl()

        def scenario():
            for lpn in range(4):
                yield engine.process(ftl.write(lpn, bytes([lpn]) * 8))
            return (yield engine.process(ftl.scrub()))

        assert engine.run_process(scenario()) == 0

    def test_scrub_relocates_high_error_pages_and_preserves_data(self):
        engine, ftl = self.make_worn_ftl()

        def scenario():
            # Age the media with churn, then place long-lived data.
            for i in range(500):
                yield engine.process(ftl.write(i % 3, b"churn"))
            for lpn in range(4, 8):
                yield engine.process(ftl.write(lpn, bytes([lpn]) * 8))
            moved = yield engine.process(ftl.scrub())
            return moved

        moved = engine.run_process(scenario())
        engine.run()
        assert moved > 0
        assert ftl.stats.pages_scrubbed == moved
        for lpn in range(4, 8):
            assert ftl.peek(lpn)[:8] == bytes([lpn]) * 8
        ftl.check_consistency()

    def test_scrubbed_pages_remain_readable(self):
        engine, ftl = self.make_worn_ftl()

        def scenario():
            for i in range(500):
                yield engine.process(ftl.write(i % 3, b"churn"))
            yield engine.process(ftl.write(5, b"precious"))
            yield engine.process(ftl.scrub())
            data = yield engine.process(ftl.read(5))
            return data

        # Without the scrub, a worn copy could eventually decay to UECC;
        # after the patrol the data reads back intact.
        data = engine.run_process(scenario())
        assert data[:8] == b"precious"
